(* Tests for the scenario-matrix DSL (lib/matrix).

   Three batteries:

   - parsing: negative fixtures asserting the exact error span
     (file:line:col) and message — the reader's one job beyond parsing
     is pointing at the offending token;
   - expansion: cross/zip cell counts and row-major order, a qcheck
     property that expansion is a pure, stable function of the spec
     text, and oracle selection at the n = 3f + 1 resilience boundary;
   - runner: jobs=1 vs jobs=4 produce byte-identical BENCH_MATRIX
     JSON (no clock, so wall fields are exactly 0), and an expect-fail
     cell beyond the resilience bound passes exactly because the
     protocol refuses the configuration. *)

module Sexp = Abc_matrix.Sexp
module Spec = Abc_matrix.Spec
module Runner = Abc_matrix.Runner
module Pool = Abc_exec.Pool
module Json = Abc_sim.Json

let spec_of_string text =
  match Spec.of_string ~file:"test.matrix" text with
  | Ok s -> s
  | Error e -> Alcotest.failf "spec rejected: %s" (Sexp.error_to_string e)

let spec_error text =
  match Spec.of_string ~file:"test.matrix" text with
  | Ok _ -> Alcotest.fail "spec unexpectedly accepted"
  | Error e -> e

(* A minimal valid spec used as the base for mutations. *)
let base_spec ~axes ~expect =
  Printf.sprintf
    "(matrix\n\
    \  (id t)\n\
    \  (title \"test\")\n\
    \  (tier quick)\n\
    \  (axes\n%s)\n\
    \  (expect\n%s))\n"
    axes expect

(* ---- parse errors, with span assertions ---- *)

let check_error name text ~line ~col ~msg_has =
  let e = spec_error text in
  Alcotest.(check int) (name ^ ": line") line e.Sexp.pos.Sexp.line;
  Alcotest.(check int) (name ^ ": col") col e.Sexp.pos.Sexp.col;
  let rendered = Sexp.error_to_string e in
  let prefix = Printf.sprintf "test.matrix:%d:%d: " line col in
  if not (Astring.String.is_prefix ~affix:prefix rendered) then
    Alcotest.failf "%s: %S does not start with %S" name rendered prefix;
  if not (Astring.String.is_infix ~affix:msg_has rendered) then
    Alcotest.failf "%s: %S does not mention %S" name rendered msg_has

let test_parse_errors () =
  check_error "unterminated string" "(matrix (title \"oops)\n" ~line:1 ~col:15
    ~msg_has:"unterminated string literal";
  check_error "unclosed paren" "(matrix (id t)\n" ~line:1 ~col:0
    ~msg_has:"unclosed '('";
  check_error "empty input" "; only a comment\n" ~line:1 ~col:0
    ~msg_has:"empty spec";
  check_error "two top-level forms" "(matrix (id t))\n(matrix (id u))\n"
    ~line:2 ~col:0 ~msg_has:"single (matrix ...) form"

let test_elaboration_errors () =
  check_error "unknown axis"
    (base_spec
       ~axes:"    (protocol bracha)\n    (n 4)\n    (f 1)\n    (bogus 3)\n"
       ~expect:"    (default decide)\n")
    ~line:9 ~col:5 ~msg_has:"bogus";
  check_error "duplicate axis"
    (base_spec ~axes:"    (protocol bracha)\n    (n 4)\n    (n 7)\n    (f 1)\n"
       ~expect:"    (default decide)\n")
    ~line:5 ~col:2 ~msg_has:"declared twice";
  check_error "zip arm length mismatch"
    (base_spec
       ~axes:"    (protocol bracha)\n    (zip (n 4 7) (f 1))\n"
       ~expect:"    (default decide)\n")
    ~line:7 ~col:4 ~msg_has:"zip arms must have equal lengths";
  check_error "missing f axis"
    (base_spec ~axes:"    (protocol bracha)\n    (n 4)\n"
       ~expect:"    (default decide)\n")
    ~line:1 ~col:0 ~msg_has:"\"f\" axis";
  check_error "bad oracle"
    (base_spec ~axes:"    (protocol bracha)\n    (n 4)\n    (f 1)\n"
       ~expect:"    (default sometimes)\n")
    ~line:11 ~col:13 ~msg_has:"verdict";
  check_error "non-integer n"
    (base_spec ~axes:"    (protocol bracha)\n    (n four)\n    (f 1)\n"
       ~expect:"    (default decide)\n")
    ~line:7 ~col:7 ~msg_has:"expected an integer"

(* ---- expansion: counts and order ---- *)

let test_cross_count () =
  let spec =
    spec_of_string
      (base_spec
         ~axes:
           "    (protocol bracha)\n\
           \    (n 4 7 10)\n\
           \    (f 1)\n\
           \    (adversary fifo uniform)\n\
           \    (seeds 2)\n"
         ~expect:"    (default decide)\n")
  in
  Alcotest.(check int) "3 * 2 cells" 6 (Spec.cell_count spec);
  Alcotest.(check int) "expand agrees" 6 (List.length (Spec.expand spec));
  (* Row-major: the first group varies slowest. *)
  let ns =
    List.map (fun c -> Spec.find_int c "n" ~default:0) (Spec.expand spec)
  in
  Alcotest.(check (list int)) "first axis slowest" [ 4; 4; 7; 7; 10; 10 ] ns

let test_zip_count () =
  let spec =
    spec_of_string
      (base_spec
         ~axes:
           "    (zip (protocol bracha ben-or) (n 4 6) (f 1 1))\n\
           \    (adversary fifo uniform split)\n\
           \    (seeds 1)\n"
         ~expect:"    (default decide)\n")
  in
  (* The zip group counts once: 2 * 3, not 2^3 * 3. *)
  Alcotest.(check int) "zip * cross" 6 (Spec.cell_count spec);
  let cells = Spec.expand spec in
  Alcotest.(check int) "expand agrees" 6 (List.length cells);
  List.iter
    (fun c ->
      let proto = Spec.find_str c "protocol" ~default:"?" in
      let n = Spec.find_int c "n" ~default:0 in
      let expected = if String.equal proto "bracha" then 4 else 6 in
      Alcotest.(check int) ("zip locks n for " ^ proto) expected n)
    cells

let test_axes_order () =
  let spec =
    spec_of_string
      (base_spec
         ~axes:"    (zip (protocol bracha) (n 4)) \n    (f 1)\n    (seeds 1)\n"
         ~expect:"    (default any)\n")
  in
  Alcotest.(check (list string))
    "zip arms flatten in place"
    [ "protocol"; "n"; "f"; "seeds" ]
    (Spec.axes spec)

(* ---- oracle selection at the resilience boundary ---- *)

let test_boundary_oracles () =
  let spec =
    spec_of_string
      (base_spec
         ~axes:"    (protocol bracha)\n    (zip (n 4 7) (f 1 2))\n    (seeds 1)\n"
         ~expect:
           "    (when (n 4) (f 1) decide)\n\
           \    (when (f 2) agree)\n\
           \    (default any)\n")
  in
  let labels =
    List.map (fun c -> Spec.oracle_label c.Spec.oracle) (Spec.expand spec)
  in
  Alcotest.(check (list string))
    "first matching clause wins" [ "decide"; "agree" ] labels;
  (* n = 3f + 1 is within bound; f one beyond is not. *)
  (match Spec.resilience "bracha" with
  | None -> Alcotest.fail "bracha not in the resilience registry"
  | Some (cls, max_f) ->
    Alcotest.(check string) "class label" "n>3f" cls;
    Alcotest.(check int) "n=4 tolerates f=1" 1 (max_f 4);
    Alcotest.(check int) "n=7 tolerates f=2" 2 (max_f 7));
  match Spec.resilience "ben-or" with
  | Some (cls, max_f) ->
    Alcotest.(check string) "ben-or class" "n>5f" cls;
    Alcotest.(check int) "n=6 tolerates f=1" 1 (max_f 6)
  | None -> Alcotest.fail "ben-or not in the resilience registry"

(* ---- qcheck: expansion is a pure, stable function of the text ---- *)

let gen_axis_sizes = QCheck.(triple (1 -- 4) (1 -- 4) (1 -- 3))

let spec_with_sizes (a, b, c) =
  let values prefix k =
    String.concat " " (List.init k (fun i -> string_of_int (prefix + i)))
  in
  base_spec
    ~axes:
      (Printf.sprintf
         "    (protocol bracha)\n\
         \    (n %s)\n\
         \    (f 1)\n\
         \    (payload %s)\n\
         \    (seeds %s)\n"
         (values 4 a) (values 8 b) (values 1 c))
    ~expect:"    (when (f 1) decide)\n    (default any)\n"

let expansion_deterministic =
  QCheck.Test.make ~count:50 ~name:"expansion is stable and counts multiply"
    gen_axis_sizes (fun ((a, b, c) as sizes) ->
      let text = spec_with_sizes sizes in
      let s1 = spec_of_string text and s2 = spec_of_string text in
      let key cell =
        String.concat ";"
          (List.map (fun (k, v) -> k ^ "=" ^ v) (Spec.cell_key cell))
      in
      let k1 = List.map key (Spec.expand s1)
      and k2 = List.map key (Spec.expand s2) in
      k1 = k2
      && List.length k1 = a * b * c
      && Spec.cell_count s1 = a * b * c
      && List.sort_uniq String.compare k1 = List.sort String.compare k1)

(* ---- runner: determinism and the expect-fail contract ---- *)

let runner_spec =
  "(matrix\n\
  \  (id unit)\n\
  \  (title \"unit: boundary cells\")\n\
  \  (tier quick)\n\
  \  (axes\n\
  \    (protocol bracha)\n\
  \    (zip (n 4 4) (f 1 2))\n\
  \    (inputs split)\n\
  \    (seeds 3))\n\
  \  (expect\n\
  \    (when (f 2) expect-fail)\n\
  \    (default decide)))\n"

let run_with_jobs jobs =
  let spec = spec_of_string runner_spec in
  let pool = Pool.create ~jobs () in
  let result = Runner.run ~pool spec in
  (result, Json.to_string (Runner.to_json ~seeds_scale:1.0 result))

let test_jobs_determinism () =
  let r1, j1 = run_with_jobs 1 in
  let _, j4 = run_with_jobs 4 in
  Alcotest.(check string) "jobs=1 and jobs=4 byte-identical" j1 j4;
  Alcotest.(check bool) "both cells pass" true (Runner.passed r1)

let test_expect_fail_semantics () =
  let r, _ = run_with_jobs 2 in
  match r.Runner.cells with
  | [ within; beyond ] ->
    Alcotest.(check bool) "n=4 f=1 decides" true within.Runner.pass;
    Alcotest.(check (float 0.0001))
      "within bound: every seed decides" 1.0
      within.Runner.metrics.Runner.ok_rate;
    Alcotest.(check bool) "n=4 f=2 expect-fail passes" true beyond.Runner.pass;
    Alcotest.(check (float 0.0001))
      "beyond bound: the protocol rejects the config" 0.0
      beyond.Runner.metrics.Runner.ok_rate
  | cells -> Alcotest.failf "expected 2 cells, got %d" (List.length cells)

let test_no_clock_zero_wall () =
  let r, _ = run_with_jobs 1 in
  List.iter
    (fun c ->
      Alcotest.(check (float 0.0))
        "wall is exactly 0 without a clock" 0.0 c.Runner.metrics.Runner.wall_s)
    r.Runner.cells

(* ---- committed specs stay loadable and well-formed ---- *)

let test_committed_specs () =
  List.iter
    (fun (file, cells) ->
      let path = Filename.concat "../bench/specs" file in
      match Spec.load path with
      | Error e -> Alcotest.failf "%s: %s" file (Sexp.error_to_string e)
      | Ok spec ->
        Alcotest.(check int) (file ^ ": cell count") cells (Spec.cell_count spec))
    [
      ("e1.matrix", 80);
      ("e14.matrix", 8);
      ("e16.matrix", 9);
      ("e17.matrix", 4);
      ("e18.matrix", 6);
    ]

let () =
  Alcotest.run "matrix"
    [
      ( "parse",
        [
          Alcotest.test_case "reader errors carry spans" `Quick
            test_parse_errors;
          Alcotest.test_case "elaboration errors carry spans" `Quick
            test_elaboration_errors;
        ] );
      ( "expand",
        [
          Alcotest.test_case "cross product count and order" `Quick
            test_cross_count;
          Alcotest.test_case "zip advances arms in lockstep" `Quick
            test_zip_count;
          Alcotest.test_case "axis declaration order" `Quick test_axes_order;
          Alcotest.test_case "boundary oracle selection" `Quick
            test_boundary_oracles;
          QCheck_alcotest.to_alcotest expansion_deterministic;
        ] );
      ( "runner",
        [
          Alcotest.test_case "jobs=1 vs jobs=4 identical JSON" `Quick
            test_jobs_determinism;
          Alcotest.test_case "expect-fail at the resilience boundary" `Quick
            test_expect_fail_semantics;
          Alcotest.test_case "wall-clock zero without a clock" `Quick
            test_no_clock_zero_wall;
        ] );
      ( "specs",
        [
          Alcotest.test_case "committed specs load" `Quick test_committed_specs;
        ] );
    ]
