(* Tests for the abc_net substrate: adversary policies, behaviours and
   the execution engine, exercised through a small gossip protocol. *)

module Node_id = Abc_net.Node_id
module Protocol = Abc_net.Protocol
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module Engine = Abc_net.Engine

(* A toy protocol: every node broadcasts its input once; a node
   terminates after hearing n-f distinct values, outputting their sum.
   Small, but it exercises broadcasts, outputs, termination and
   fault/adversary plumbing. *)
module Gossip = struct
  type input = int
  type msg = Hello of int
  type output = Done of int

  type state = { heard : int Node_id.Map.t; quorum : int; finished : bool }

  let name = "gossip"

  let initial ctx input =
    ( { heard = Node_id.Map.empty; quorum = Protocol.Context.quorum ctx; finished = false },
      [ Protocol.Broadcast (Hello input) ] )

  let on_message _ctx state ~src (Hello v) =
    if state.finished || Node_id.Map.mem src state.heard then (state, [], [])
    else begin
      let heard = Node_id.Map.add src v state.heard in
      if Node_id.Map.cardinal heard >= state.quorum then
        let sum = Node_id.Map.fold (fun _ v acc -> acc + v) heard 0 in
        ({ state with heard; finished = true }, [], [ Done sum ])
      else ({ state with heard }, [], [])
    end

  let is_terminal (Done _) = true
  let on_timeout = Protocol.no_timeout
  let msg_label (Hello _) = "hello"
  let msg_bytes (Hello _) = 5
  let pp_msg ppf (Hello v) = Fmt.pf ppf "hello(%d)" v
  let pp_output ppf (Done s) = Fmt.pf ppf "done(%d)" s
end

module Run = Engine.Make (Gossip)

let node = Node_id.of_int

let default_inputs n = Array.init n (fun i -> i + 1)

let run ?faulty ?adversary ?seed ?max_deliveries ?trace ~n ~f () =
  Run.run
    (Run.config ?faulty ?adversary ?seed ?max_deliveries ?trace ~n ~f
       ~inputs:(default_inputs n) ())

let check_stop expected result =
  Alcotest.(check string) "stop reason"
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason expected)
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.Run.stop)

(* Engine basics *)

let test_all_terminal_no_faults () =
  let result = run ~n:4 ~f:0 () in
  check_stop Abc_net.Engine.All_terminal result;
  (* With f=0 the quorum is all nodes, so every node sums everything. *)
  Array.iter
    (fun outputs ->
      match outputs with
      | [ (_, Gossip.Done sum) ] -> Alcotest.(check int) "sum" 10 sum
      | _ -> Alcotest.fail "expected exactly one output")
    result.Run.outputs

let test_determinism () =
  let r1 = run ~n:5 ~f:1 ~adversary:Adversary.uniform ~seed:7 () in
  let r2 = run ~n:5 ~f:1 ~adversary:Adversary.uniform ~seed:7 () in
  Alcotest.(check int) "same deliveries" r1.Run.deliveries r2.Run.deliveries;
  Alcotest.(check int) "same duration" r1.Run.duration r2.Run.duration;
  let sums r =
    Array.to_list r.Run.outputs
    |> List.concat_map (List.map (fun (_, Gossip.Done s) -> s))
  in
  Alcotest.(check (list int)) "same outputs" (sums r1) (sums r2)

let test_seed_changes_schedule () =
  let r1 = run ~n:5 ~f:1 ~adversary:Adversary.uniform ~seed:1 () in
  let r2 = run ~n:5 ~f:1 ~adversary:Adversary.uniform ~seed:2 () in
  (* Different schedules generally yield different quorum sums at some
     node; at minimum the runs must both succeed. *)
  check_stop Abc_net.Engine.All_terminal r1;
  check_stop Abc_net.Engine.All_terminal r2

let test_metrics_counts () =
  let result = run ~n:4 ~f:0 () in
  Alcotest.(check int) "sent = n*n" 16
    (Abc_sim.Metrics.counter result.Run.metrics "sent");
  Alcotest.(check int) "labelled counter" 16
    (Abc_sim.Metrics.counter result.Run.metrics "sent.hello");
  Alcotest.(check int) "delivered = deliveries" result.Run.deliveries
    (Abc_sim.Metrics.counter result.Run.metrics "delivered")

let test_delivery_limit () =
  let result = run ~n:4 ~f:0 ~max_deliveries:3 () in
  check_stop Abc_net.Engine.Delivery_limit result;
  Alcotest.(check int) "stopped at budget" 3 result.Run.deliveries

let test_quiescent_when_quorum_unreachable () =
  (* Two silent nodes but f=1: the quorum of 3 hellos can never be
     reached by the 2 remaining senders. *)
  let faulty = [ (node 2, Behaviour.Silent); (node 3, Behaviour.Silent) ] in
  let result = run ~n:4 ~f:1 ~faulty () in
  check_stop Abc_net.Engine.Quiescent result

let test_trace_records () =
  let trace = Abc_sim.Trace.create () in
  let _ = run ~n:4 ~f:0 ~trace () in
  Alcotest.(check bool) "delivers traced" true
    (List.length (Abc_sim.Trace.find_kind trace ~label:"deliver") > 0);
  Alcotest.(check bool) "outputs traced" true
    (List.length (Abc_sim.Trace.find_kind trace ~label:"output") > 0)

let test_config_validation () =
  Alcotest.check_raises "inputs arity"
    (Invalid_argument "Engine.config: inputs length must equal n") (fun () ->
      ignore (Run.config ~n:4 ~f:1 ~inputs:[| 1 |] ()));
  Alcotest.check_raises "faulty range"
    (Invalid_argument "Engine.config: faulty node id out of range") (fun () ->
      ignore
        (Run.config ~n:4 ~f:1
           ~faulty:[ (node 9, Behaviour.Silent) ]
           ~inputs:(default_inputs 4) ()))

let test_honest_listing () =
  let cfg =
    Run.config ~n:4 ~f:1
      ~faulty:[ (node 1, Behaviour.Silent) ]
      ~inputs:(default_inputs 4) ()
  in
  Alcotest.(check (list int)) "honest nodes" [ 0; 2; 3 ]
    (List.map Node_id.to_int (Run.honest cfg))

(* Behaviours *)

let test_silent_node_sends_nothing () =
  let faulty = [ (node 3, Behaviour.Silent) ] in
  let result = run ~n:4 ~f:1 ~faulty () in
  check_stop Abc_net.Engine.All_terminal result;
  (* 3 honest broadcasts of 4 messages each *)
  Alcotest.(check int) "sent" 12 (Abc_sim.Metrics.counter result.Run.metrics "sent");
  (* one suppressed logical action: the initial broadcast *)
  Alcotest.(check int) "dropped counted" 1
    (Abc_sim.Metrics.counter result.Run.metrics "dropped.faulty")

let test_crash_after_zero_is_silent () =
  let faulty = [ (node 3, Behaviour.Crash_after 0) ] in
  let result = run ~n:4 ~f:1 ~faulty () in
  check_stop Abc_net.Engine.All_terminal result;
  Alcotest.(check int) "sent" 12 (Abc_sim.Metrics.counter result.Run.metrics "sent")

let test_crash_after_one_sends_init () =
  let faulty = [ (node 3, Behaviour.Crash_after 1) ] in
  let result = run ~n:4 ~f:1 ~faulty () in
  check_stop Abc_net.Engine.All_terminal result;
  (* The initial broadcast (activation 0) goes out, nothing after. *)
  Alcotest.(check int) "sent" 16 (Abc_sim.Metrics.counter result.Run.metrics "sent")

let test_mutate_consistent_lie () =
  (* The liar reports 100 to everyone: every node that counts the liar
     in its quorum sees the same corrupted value. *)
  let faulty = [ (node 0, Behaviour.Mutate (fun _rng (Gossip.Hello _) -> Gossip.Hello 100)) ] in
  let result = run ~n:4 ~f:0 ~faulty () in
  check_stop Abc_net.Engine.All_terminal result;
  List.iter
    (fun i ->
      match result.Run.outputs.(i) with
      | [ (_, Gossip.Done sum) ] ->
        (* inputs 2+3+4 plus the lie 100 *)
        Alcotest.(check int) "corrupted sum" 109 sum
      | _ -> Alcotest.fail "expected one output")
    [ 1; 2; 3 ]

let test_equivocate_per_recipient () =
  (* Node 0 tells each node its own id as the value. *)
  let forge _rng ~dst (Gossip.Hello _) = Gossip.Hello (1000 * Node_id.to_int dst) in
  let faulty = [ (node 0, Behaviour.Equivocate forge) ] in
  let result = run ~n:4 ~f:0 ~faulty () in
  check_stop Abc_net.Engine.All_terminal result;
  List.iter
    (fun i ->
      match result.Run.outputs.(i) with
      | [ (_, Gossip.Done sum) ] ->
        Alcotest.(check int) "per-recipient lie" (9 + (1000 * i)) sum
      | _ -> Alcotest.fail "expected one output")
    [ 1; 2; 3 ]

let test_replay_duplicates () =
  let faulty = [ (node 0, Behaviour.Replay 2) ] in
  let result = run ~n:4 ~f:0 ~faulty () in
  check_stop Abc_net.Engine.All_terminal result;
  (* node 0 sends 3x4 = 12, others 4 each -> 24; duplicates are ignored
     by the dedup logic so sums stay correct. *)
  Alcotest.(check int) "sent with replay" 24
    (Abc_sim.Metrics.counter result.Run.metrics "sent");
  match result.Run.outputs.(1) with
  | [ (_, Gossip.Done sum) ] -> Alcotest.(check int) "dedup holds" 10 sum
  | _ -> Alcotest.fail "expected one output"

let test_behaviour_labels () =
  Alcotest.(check string) "honest" "honest" (Behaviour.label Behaviour.Honest);
  Alcotest.(check string) "silent" "silent" (Behaviour.label Behaviour.Silent);
  Alcotest.(check string) "crash" "crash" (Behaviour.label (Behaviour.Crash_after 3));
  Alcotest.(check string) "replay" "replay" (Behaviour.label (Behaviour.Replay 1));
  Alcotest.(check string) "crash-recover" "crash-recover"
    (Behaviour.label (Behaviour.Crash_recover [ (5, 10) ]))

(* Crash-recovery *)

(* The durable store for Gossip: a finished node's WAL holds its sum. *)
let gossip_recovery : Run.recovery =
  {
    Run.snapshot =
      (fun (state : Gossip.state) ->
        if state.Gossip.finished then
          let sum =
            Node_id.Map.fold (fun _ v acc -> acc + v) state.Gossip.heard 0
          in
          "done:" ^ string_of_int sum
        else "");
    restore =
      (fun ctx input ~durable ->
        match String.split_on_char ':' durable with
        | [ "done"; sum ] ->
          ( {
              Gossip.heard = Node_id.Map.empty;
              quorum = Protocol.Context.quorum ctx;
              finished = true;
            },
            [],
            [ Gossip.Done (int_of_string sum) ] )
        | _ ->
          let state, actions = Gossip.initial ctx input in
          (state, actions, []));
  }

let test_crash_recover_amnesia_quiescent () =
  (* Crash node 2 early (most Hellos still in flight get dropped) and
     rejoin it late with NO recovery support: total amnesia.  Its fresh
     incarnation rebroadcasts, but nobody re-sends their Hello, so it
     can never re-reach the quorum: the run goes quiescent. *)
  let faulty = [ (node 2, Behaviour.Crash_recover [ (3, 60) ]) ] in
  let result = run ~n:4 ~f:1 ~faulty () in
  check_stop Abc_net.Engine.Quiescent result;
  let c = Abc_sim.Metrics.counter result.Run.metrics in
  Alcotest.(check int) "crashed" 1 (c "node.crashed");
  Alcotest.(check int) "recovered" 1 (c "node.recovered");
  Alcotest.(check bool) "deliveries dropped while down" true
    (c "dropped.crashed" > 0)

let test_crash_recover_durable_completes () =
  (* Crash node 2 after it finished (all 16 deliveries land by tick
     16): its WAL holds the sum, so the restored incarnation re-emits
     its terminal output and the run stays all-terminal. *)
  let faulty = [ (node 2, Behaviour.Crash_recover [ (30, 40) ]) ] in
  let result =
    Run.run
      (Run.config ~n:4 ~f:1 ~faulty ~recovery:gossip_recovery
         ~inputs:(default_inputs 4) ())
  in
  check_stop Abc_net.Engine.All_terminal result;
  (match result.Run.outputs.(2) with
  | [ (_, Gossip.Done first); (t, Gossip.Done second) ] ->
    Alcotest.(check int) "restored sum matches" first second;
    Alcotest.(check int) "re-emitted at rejoin" 40 t
  | _ -> Alcotest.fail "expected pre-crash and post-restore outputs");
  let c = Abc_sim.Metrics.counter result.Run.metrics in
  Alcotest.(check int) "crashed" 1 (c "node.crashed");
  Alcotest.(check int) "recovered" 1 (c "node.recovered")

let test_crash_recover_traced () =
  let trace = Abc_sim.Trace.create () in
  let faulty = [ (node 2, Behaviour.Crash_recover [ (30, 40) ]) ] in
  let _ =
    Run.run
      (Run.config ~n:4 ~f:1 ~faulty ~recovery:gossip_recovery ~trace
         ~inputs:(default_inputs 4) ())
  in
  Alcotest.(check int) "node-crashed traced" 1
    (List.length (Abc_sim.Trace.find_kind trace ~label:"node-crashed"));
  Alcotest.(check int) "node-recovered traced" 1
    (List.length (Abc_sim.Trace.find_kind trace ~label:"node-recovered"))

let test_crash_recover_deterministic () =
  let go () =
    let faulty = [ (node 2, Behaviour.Crash_recover [ (3, 25); (50, 70) ]) ] in
    Run.run
      (Run.config ~n:4 ~f:1 ~faulty ~recovery:gossip_recovery ~seed:5
         ~adversary:Adversary.uniform ~inputs:(default_inputs 4) ())
  in
  let r1 = go () and r2 = go () in
  Alcotest.(check int) "same deliveries" r1.Run.deliveries r2.Run.deliveries;
  Alcotest.(check int) "same duration" r1.Run.duration r2.Run.duration

let test_crash_recover_schedule_validation () =
  let reject schedule =
    Alcotest.check_raises "malformed schedule"
      (Invalid_argument
         "Engine.config: malformed Crash_recover schedule (need non-empty, \
          crash < rejoin, strictly increasing)") (fun () ->
        ignore
          (Run.config ~n:4 ~f:1
             ~faulty:[ (node 1, Behaviour.Crash_recover schedule) ]
             ~inputs:(default_inputs 4) ()))
  in
  reject [];
  reject [ (10, 5) ];
  reject [ (10, 20); (15, 30) ]

(* Sequence diagram *)

let test_sequence_diagram () =
  let trace = Abc_sim.Trace.create () in
  let _ = run ~n:4 ~f:0 ~trace () in
  let diagram = Abc_net.Sequence_diagram.render trace ~n:4 in
  let lines = String.split_on_char '\n' diagram in
  (* header + one line per delivery + one per output + trailing "" *)
  Alcotest.(check bool) "has header" true
    (String.length (List.hd lines) > 0 && String.sub (List.hd lines) 0 4 = "time");
  Alcotest.(check bool) "draws arrows" true
    (List.exists (fun l -> String.contains l '>') lines
    || List.exists (fun l -> String.contains l '<') lines);
  Alcotest.(check bool) "marks outputs" true
    (List.exists (fun l -> String.contains l '!') lines);
  (* 16 deliveries + 4 outputs + header + trailing empty *)
  Alcotest.(check bool)
    (Printf.sprintf "line count plausible (%d)" (List.length lines))
    true
    (List.length lines >= 20)

let test_sequence_diagram_window () =
  let trace = Abc_sim.Trace.create () in
  let _ = run ~n:4 ~f:0 ~trace () in
  let full = Abc_net.Sequence_diagram.render trace ~n:4 in
  let window =
    Abc_net.Sequence_diagram.render_window trace ~n:4 ~from_time:0 ~to_time:3
  in
  Alcotest.(check bool) "window smaller" true
    (String.length window < String.length full)

(* Adversary policies *)

let meta ~seq ~src ~dst ?(sent_at = 0) ?(priority = 0) () =
  { Adversary.seq; src = node src; dst = node dst; sent_at; priority }

(* Envelope arena *)

module Arena = Abc_net.Envelope_arena

let arena_push a ~seq =
  Arena.push a ~meta:(meta ~seq ~src:0 ~dst:1 ()) ~payload:(seq * 10)
    ~copy:false

(* Removal must replicate Vec.swap_remove: the last slot fills the
   hole, and the seq table follows both the moved and the removed
   entry.  The engine's trace byte-identity rests on this layout. *)
let test_arena_swap_remove_layout () =
  let a = Arena.create () in
  for seq = 0 to 4 do
    arena_push a ~seq
  done;
  Arena.remove a 1;
  Alcotest.(check int) "length" 4 (Arena.length a);
  Alcotest.(check int) "last moved into hole" 4 (Arena.meta a 1).Adversary.seq;
  Alcotest.(check int) "payload moved with it" 40 (Arena.payload a 1);
  Alcotest.(check int) "moved seq retargeted" 1 (Arena.slot_of_seq a 4);
  Alcotest.(check int) "removed seq dead" (-1) (Arena.slot_of_seq a 1);
  Alcotest.(check int) "untouched slot intact" 0 (Arena.slot_of_seq a 0)

(* Steady-state churn must recycle slots, not allocate: after the
   initial growth, capacity stays put through thousands of
   push/remove cycles (the hot-path no-allocation claim in
   PERFORMANCE.md). *)
let test_arena_reuse_after_recycle () =
  let a = Arena.create () in
  for seq = 0 to 7 do
    arena_push a ~seq
  done;
  let cap = Arena.capacity a in
  for seq = 8 to 4095 do
    Arena.remove a (Arena.oldest_slot a);
    arena_push a ~seq
  done;
  Alcotest.(check int) "length steady" 8 (Arena.length a);
  Alcotest.(check int) "capacity never regrew" cap (Arena.capacity a)

let test_arena_oldest_cursor () =
  let a = Arena.create () in
  for seq = 0 to 9 do
    arena_push a ~seq
  done;
  (* Remove seqs 0 and 2 (slot lookups stay valid through the moves);
     the oldest live message is then seq 1, wherever it sits. *)
  Arena.remove a (Arena.slot_of_seq a 0);
  Arena.remove a (Arena.slot_of_seq a 2);
  let oldest = Arena.oldest_slot a in
  Alcotest.(check int) "oldest live seq" 1 (Arena.meta a oldest).Adversary.seq;
  Arena.remove a (Arena.slot_of_seq a 1);
  let oldest = Arena.oldest_slot a in
  Alcotest.(check int) "cursor advances past dead seqs" 3
    (Arena.meta a oldest).Adversary.seq

let view_of_list metas =
  let arr = Array.of_list metas in
  let oldest () =
    let best = ref 0 in
    Array.iteri
      (fun i m -> if m.Adversary.seq < arr.(!best).Adversary.seq then best := i)
      arr;
    !best
  in
  let find_seq seq =
    let found = ref None in
    Array.iteri (fun i m -> if m.Adversary.seq = seq then found := Some i) arr;
    !found
  in
  Adversary.View.make
    ~length:(fun () -> Array.length arr)
    ~get:(Array.get arr) ~oldest ~find_seq

(* Instantiate a policy and feed it the view's entries (as [note]
   expects) before choosing. *)
let choose_with policy ~rng ~now view metas =
  let instance = policy.Adversary.instantiate () in
  List.iter instance.Adversary.note metas;
  instance.Adversary.choose ~rng ~now view

let test_view_oldest () =
  let v =
    view_of_list
      [ meta ~seq:5 ~src:0 ~dst:1 (); meta ~seq:2 ~src:1 ~dst:0 (); meta ~seq:9 ~src:2 ~dst:0 () ]
  in
  Alcotest.(check int) "oldest index" 1 (Adversary.View.oldest v)

let test_fifo_chooses_oldest () =
  let rng = Abc_prng.Stream.root ~seed:0 in
  let metas = [ meta ~seq:3 ~src:0 ~dst:1 (); meta ~seq:1 ~src:1 ~dst:2 () ] in
  let v = view_of_list metas in
  Alcotest.(check int) "fifo" 1 (choose_with Adversary.fifo ~rng ~now:0 v metas)

let test_latency_prefers_earliest_arrival () =
  let rng = Abc_prng.Stream.root ~seed:0 in
  let policy = Adversary.latency ~mean:5. in
  let metas =
    [ meta ~seq:1 ~src:0 ~dst:1 ~priority:50 (); meta ~seq:2 ~src:1 ~dst:2 ~priority:3 () ]
  in
  let v = view_of_list metas in
  Alcotest.(check int) "min priority wins" 1 (choose_with policy ~rng ~now:0 v metas)

let test_targeted_delay_starves_victim () =
  let rng = Abc_prng.Stream.root ~seed:0 in
  let policy = Adversary.targeted_delay ~victims:[ node 1 ] in
  let metas = [ meta ~seq:1 ~src:0 ~dst:1 (); meta ~seq:2 ~src:0 ~dst:2 () ] in
  let v = view_of_list metas in
  Alcotest.(check int) "victim starved" 1 (choose_with policy ~rng ~now:0 v metas)

let test_source_starve () =
  let rng = Abc_prng.Stream.root ~seed:0 in
  let policy = Adversary.source_starve ~victims:[ node 0 ] in
  let metas = [ meta ~seq:1 ~src:0 ~dst:1 (); meta ~seq:2 ~src:1 ~dst:2 () ] in
  let v = view_of_list metas in
  Alcotest.(check int) "victim's messages starved" 1
    (choose_with policy ~rng ~now:0 v metas)

let test_split_starves_cross_half () =
  let rng = Abc_prng.Stream.root ~seed:0 in
  let policy = Adversary.split ~n:4 in
  let metas =
    [ meta ~seq:1 ~src:0 ~dst:3 (); (* cross-half *) meta ~seq:2 ~src:2 ~dst:3 () ]
  in
  let v = view_of_list metas in
  Alcotest.(check int) "same-half preferred" 1 (choose_with policy ~rng ~now:0 v metas)

let test_fairness_overrides_starvation () =
  (* Under targeted-delay the victim must still terminate thanks to the
     engine's fairness bound. *)
  let result =
    run ~n:4 ~f:0 ~adversary:(Adversary.targeted_delay ~victims:[ node 1 ]) ()
  in
  check_stop Abc_net.Engine.All_terminal result;
  Alcotest.(check bool) "victim produced output" true
    (List.length result.Run.outputs.(1) = 1)

let test_fairness_age_bounded () =
  (* The fairness audit: even under pure starvation the oldest message
     is forced out at the age bound, so no delivery age can exceed the
     bound by more than the backlog drained one-per-tick. *)
  let result =
    run ~n:4 ~f:0 ~adversary:(Adversary.targeted_delay ~victims:[ node 1 ]) ()
  in
  check_stop Abc_net.Engine.All_terminal result;
  let bound = 32 * 4 * 4 in
  let max_age = Abc_sim.Metrics.counter result.Run.metrics "max_delivery_age" in
  Alcotest.(check bool)
    (Printf.sprintf "max age %d within bound %d + backlog" max_age (bound + 64))
    true
    (max_age <= bound + 64)

let test_rotating_eclipse_completes () =
  (* Victim rotation must not break liveness. *)
  List.iter
    (fun seed ->
      let result =
        run ~n:5 ~f:1 ~adversary:(Adversary.rotating_eclipse ~n:5 ~period:3) ~seed ()
      in
      check_stop Abc_net.Engine.All_terminal result)
    [ 0; 1; 2; 3; 4 ]

let test_rotating_eclipse_starves_current_victim () =
  let rng = Abc_prng.Stream.root ~seed:0 in
  let policy = Adversary.rotating_eclipse ~n:3 ~period:100 in
  let instance = policy.Adversary.instantiate () in
  (* Two messages: one to the initial victim (node 0), one to node 1:
     the non-victim message must be chosen first. *)
  let metas = [ meta ~seq:1 ~src:2 ~dst:0 (); meta ~seq:2 ~src:2 ~dst:1 () ] in
  let v = view_of_list metas in
  List.iter instance.Adversary.note metas;
  Alcotest.(check int) "avoids victim" 1 (instance.Adversary.choose ~rng ~now:0 v)

(* Link faults: deterministic drop/dup/partition plans *)

module Link_faults = Abc_net.Link_faults

let counter result name = Abc_sim.Metrics.counter result.Run.metrics name

let run_faults ?adversary ?(seed = 0) ~link_faults ~n ~f () =
  Run.run
    (Run.config ?adversary ~seed ~link_faults ~n ~f ~inputs:(default_inputs n) ())

let test_drop_all_counts () =
  (* drop=1.0: 4 broadcasts x 4 recipients = 16 sends; the 4
     self-deliveries survive (a node's channel to itself is never
     faulty) and all 12 cross-link messages drop, so nobody reaches the
     quorum of 3 and the run goes quiescent. *)
  let plan = Link_faults.make ~drop:1.0 () in
  let result = run_faults ~link_faults:plan ~n:4 ~f:1 () in
  check_stop Abc_net.Engine.Quiescent result;
  Alcotest.(check int) "sent" 16 (counter result "sent");
  Alcotest.(check int) "dropped" 12 (counter result "dropped.link");
  Alcotest.(check int) "dropped by loss" 12 (counter result "dropped.link.loss");
  Alcotest.(check int) "delivered" 4 result.Run.deliveries;
  Array.iter
    (fun outputs -> Alcotest.(check int) "no outputs" 0 (List.length outputs))
    result.Run.outputs

let test_dup_all_counts () =
  (* dup=1.0 under fifo: all 16 originals are delivered in send order,
     each of the 12 cross-link deliveries enqueues exactly one copy
     (copies are never re-duplicated), and the run reaches all-terminal
     before any copy is delivered.  Gossip dedups, so sums are exact. *)
  let plan = Link_faults.make ~dup:1.0 () in
  let result =
    run_faults ~link_faults:plan ~adversary:Adversary.fifo ~n:4 ~f:0 ()
  in
  check_stop Abc_net.Engine.All_terminal result;
  Alcotest.(check int) "duplicated" 12 (counter result "duplicated.link");
  Alcotest.(check int) "delivered" 16 result.Run.deliveries;
  Array.iter
    (fun outputs ->
      match outputs with
      | [ (_, Gossip.Done sum) ] -> Alcotest.(check int) "sum" 10 sum
      | _ -> Alcotest.fail "expected exactly one output")
    result.Run.outputs

let test_partition_isolates_island () =
  (* A never-healing cut around node 0: its 3 outbound and 3 inbound
     cross messages drop; the island complement {1,2,3} still reaches
     quorum (3 = n-f) among themselves and sums 2+3+4. *)
  let cuts = [ Link_faults.cut ~from_tick:0 ~until_tick:max_int [ node 0 ] ] in
  let plan = Link_faults.make ~cuts () in
  let result = run_faults ~link_faults:plan ~n:4 ~f:1 () in
  check_stop Abc_net.Engine.Quiescent result;
  Alcotest.(check int) "partition drops" 6 (counter result "dropped.link.partition");
  Alcotest.(check int) "no loss drops" 0 (counter result "dropped.link.loss");
  Alcotest.(check int) "node 0 isolated" 0 (List.length result.Run.outputs.(0));
  List.iter
    (fun i ->
      match result.Run.outputs.(i) with
      | [ (_, Gossip.Done sum) ] -> Alcotest.(check int) "mainland sum" 9 sum
      | _ -> Alcotest.fail "mainland node should finish")
    [ 1; 2; 3 ]

let test_partition_heals () =
  (* Cut around node 0 for ticks [0,5) under fifo.  Deliveries happen
     at ticks 1..16 in send order, so exactly node 0's three cross
     sends (ticks 2,3,4) are severed; everything from tick 5 on flows.
     Node 0 then hears itself plus nodes 1,2 (quorum 3): 1+2+3 = 6. *)
  let cuts = [ Link_faults.cut ~from_tick:0 ~until_tick:5 [ node 0 ] ] in
  let plan = Link_faults.make ~cuts () in
  let result =
    run_faults ~link_faults:plan ~adversary:Adversary.fifo ~n:4 ~f:1 ()
  in
  check_stop Abc_net.Engine.All_terminal result;
  Alcotest.(check int) "partition drops" 3 (counter result "dropped.link.partition");
  (match result.Run.outputs.(0) with
  | [ (_, Gossip.Done sum) ] -> Alcotest.(check int) "healed sum" 6 sum
  | _ -> Alcotest.fail "node 0 should finish after the heal");
  List.iter
    (fun i ->
      match result.Run.outputs.(i) with
      | [ (_, Gossip.Done sum) ] -> Alcotest.(check int) "mainland sum" 9 sum
      | _ -> Alcotest.fail "mainland node should finish")
    [ 1; 2; 3 ]

let test_link_events_traced () =
  let trace = Abc_sim.Trace.create () in
  let plan = Link_faults.make ~drop:0.5 ~dup:0.4 () in
  let _ =
    Run.run
      (Run.config ~n:4 ~f:1 ~inputs:(default_inputs 4) ~link_faults:plan
         ~adversary:Adversary.uniform ~seed:1 ~trace ())
  in
  Alcotest.(check bool) "drops traced" true
    (List.length (Abc_sim.Trace.find_kind trace ~label:"link-drop") > 0);
  Alcotest.(check bool) "dups traced" true
    (List.length (Abc_sim.Trace.find_kind trace ~label:"link-dup") > 0)

let test_inactive_plan_is_identity () =
  (* An all-zero plan must not even perturb the PRNG: the run is
     bit-identical to one with no plan at all. *)
  let r1 = run ~n:5 ~f:1 ~adversary:Adversary.uniform ~seed:11 () in
  let r2 =
    run_faults ~link_faults:(Link_faults.make ()) ~adversary:Adversary.uniform
      ~seed:11 ~n:5 ~f:1 ()
  in
  Alcotest.(check int) "deliveries" r1.Run.deliveries r2.Run.deliveries;
  Alcotest.(check int) "duration" r1.Run.duration r2.Run.duration

let prop_link_faults_deterministic =
  QCheck.Test.make ~name:"lossy runs are a function of the seed" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let cuts = [ Link_faults.cut ~from_tick:3 ~until_tick:9 [ node 1 ] ] in
      let plan = Link_faults.make ~drop:0.2 ~dup:0.1 ~cuts () in
      let go () =
        run_faults ~link_faults:plan ~adversary:Adversary.uniform ~seed ~n:4
          ~f:1 ()
      in
      let r1 = go () and r2 = go () in
      r1.Run.deliveries = r2.Run.deliveries
      && r1.Run.duration = r2.Run.duration
      && counter r1 "dropped.link" = counter r2 "dropped.link"
      && counter r1 "duplicated.link" = counter r2 "duplicated.link")

(* Virtual timers *)

(* A message-free protocol driven entirely by timeouts: counts [input]
   timer firings 4 ticks apart, terminating at zero. *)
module Ticker = struct
  type input = int

  (* never constructed: the protocol is message-free *)
  type msg = Never [@warning "-37"]
  type output = Fired of int

  type state = int

  let name = "ticker"

  let initial _ctx k =
    ((k : state), if k > 0 then [ Protocol.Set_timer { id = 3; after = 4 } ] else [])

  let on_message _ctx state ~src:_ Never = (state, [], [])

  let on_timeout _ctx state ~id =
    Alcotest.(check int) "timer id" 3 id;
    let state = state - 1 in
    ( state,
      (if state > 0 then [ Protocol.Set_timer { id = 3; after = 4 } ] else []),
      [ Fired state ] )

  let is_terminal (Fired k) = k = 0

  let msg_label Never = "never"
  let msg_bytes Never = 1

  let pp_msg ppf Never = Fmt.string ppf "never"

  let pp_output ppf (Fired k) = Fmt.pf ppf "fired(%d)" k
end

module TickRun = Engine.Make (Ticker)

let test_timers_drive_quiet_network () =
  (* No messages at all: the clock must jump to each due tick (4, then
     8) instead of declaring quiescence. *)
  let result =
    TickRun.run (TickRun.config ~n:1 ~f:0 ~inputs:[| 2 |] ())
  in
  Alcotest.(check string) "stop" "all-terminal"
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.TickRun.stop);
  Alcotest.(check int) "duration" 8 result.TickRun.duration;
  Alcotest.(check int) "timers set" 2
    (Abc_sim.Metrics.counter result.TickRun.metrics "timer.set");
  Alcotest.(check int) "timers fired" 2
    (Abc_sim.Metrics.counter result.TickRun.metrics "timer.fired");
  Alcotest.(check int) "no deliveries" 0 result.TickRun.deliveries;
  match result.TickRun.outputs.(0) with
  | [ (t1, Ticker.Fired 1); (t2, Ticker.Fired 0) ] ->
    Alcotest.(check int) "first firing" 4 t1;
    Alcotest.(check int) "second firing" 8 t2
  | _ -> Alcotest.fail "expected two firings"

let test_crash_invalidates_timers () =
  (* Node 1 crashes at tick 2 with its first timer (due at 4) armed:
     the firing must be discarded as stale, not delivered to the fresh
     incarnation.  After rejoining at 100 with amnesia it restarts its
     countdown from scratch and still completes. *)
  let faulty = [ (node 1, Behaviour.Crash_recover [ (2, 100) ]) ] in
  let result =
    TickRun.run (TickRun.config ~n:2 ~f:0 ~faulty ~inputs:[| 2; 2 |] ())
  in
  Alcotest.(check string) "stop" "all-terminal"
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.TickRun.stop);
  let c = Abc_sim.Metrics.counter result.TickRun.metrics in
  Alcotest.(check int) "stale timer discarded" 1 (c "timer.stale");
  (match result.TickRun.outputs.(1) with
  | [ (t1, Ticker.Fired 1); (t2, Ticker.Fired 0) ] ->
    Alcotest.(check int) "restarted countdown" 104 t1;
    Alcotest.(check int) "completed after rejoin" 108 t2
  | _ -> Alcotest.fail "expected a full restarted countdown");
  match result.TickRun.outputs.(0) with
  | [ (4, Ticker.Fired 1); (8, Ticker.Fired 0) ] -> ()
  | _ -> Alcotest.fail "node 0's schedule must be unaffected"

let test_no_timers_means_quiescent () =
  let result = TickRun.run (TickRun.config ~n:1 ~f:0 ~inputs:[| 0 |] ()) in
  Alcotest.(check string) "stop" "quiescent"
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.TickRun.stop);
  Alcotest.(check int) "duration" 0 result.TickRun.duration

let test_timer_events_traced () =
  let trace = Abc_sim.Trace.create () in
  let _ =
    TickRun.run (TickRun.config ~n:1 ~f:0 ~inputs:[| 2 |] ~trace ())
  in
  Alcotest.(check int) "timer-set traced" 2
    (List.length (Abc_sim.Trace.find_kind trace ~label:"timer-set"));
  Alcotest.(check int) "timeout traced" 2
    (List.length (Abc_sim.Trace.find_kind trace ~label:"timeout"))

(* The reliable-channel transport *)

module RGossip = Abc_net.Reliable_link.Make (Gossip)
module RRun = Engine.Make (RGossip)

let test_reliable_link_transparent () =
  (* Over a faultless network the wrapper is invisible: same outputs as
     the raw protocol, no retransmissions. *)
  let result =
    RRun.run
      (RRun.config ~n:4 ~f:0 ~inputs:(default_inputs 4)
         ~adversary:Adversary.uniform ~seed:7 ())
  in
  Alcotest.(check string) "stop" "all-terminal"
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.RRun.stop);
  Alcotest.(check int) "no retransmissions" 0
    (Abc_sim.Metrics.counter result.RRun.metrics "sent.rl.retx");
  Array.iter
    (fun outputs ->
      match outputs with
      | [ (_, Gossip.Done sum) ] -> Alcotest.(check int) "sum" 10 sum
      | _ -> Alcotest.fail "expected exactly one output")
    result.RRun.outputs

let test_reliable_link_retransmission_schedule () =
  (* Hand-computed ARQ run: two nodes behind a partition around node 0
     that heals at tick 40, fifo scheduling, initial rto 8n^2 = 32.

     t1-t6: the two self Data and their Acks flow; both cross Data
     (ticks 2,3) are severed.  t=32: node 0's self channel is acked,
     its timer disarms.  t=33,34: both cross channels time out and
     retransmit; the copies (ticks 36,37) are still severed.  rto
     doubles to 64: the next firings at t=97,98 retransmit again, and
     those copies (ticks 99,100) land after the heal — each peer
     delivers the other's Hello and terminates. *)
  let cuts = [ Link_faults.cut ~from_tick:0 ~until_tick:40 [ node 0 ] ] in
  let plan = Link_faults.make ~cuts () in
  let result =
    RRun.run
      (RRun.config ~n:2 ~f:0 ~inputs:(default_inputs 2)
         ~adversary:Adversary.fifo ~link_faults:plan ())
  in
  let c = Abc_sim.Metrics.counter result.RRun.metrics in
  Alcotest.(check string) "stop" "all-terminal"
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.RRun.stop);
  Alcotest.(check int) "partition drops" 4 (c "dropped.link");
  Alcotest.(check int) "retransmissions" 4 (c "sent.rl.retx");
  Alcotest.(check int) "timers fired" 6 (c "timer.fired");
  Alcotest.(check int) "timers set" 8 (c "timer.set");
  Alcotest.(check int) "deliveries" 6 result.RRun.deliveries;
  Alcotest.(check int) "duration" 100 result.RRun.duration;
  Array.iter
    (fun outputs ->
      match outputs with
      | [ (_, Gossip.Done sum) ] -> Alcotest.(check int) "sum" 3 sum
      | _ -> Alcotest.fail "expected exactly one output")
    result.RRun.outputs

let test_reliable_link_retransmit_events_traced () =
  let trace = Abc_sim.Trace.create () in
  let cuts = [ Link_faults.cut ~from_tick:0 ~until_tick:40 [ node 0 ] ] in
  let plan = Link_faults.make ~cuts () in
  let _ =
    RRun.run
      (RRun.config ~n:2 ~f:0 ~inputs:(default_inputs 2)
         ~adversary:Adversary.fifo ~link_faults:plan ~trace ())
  in
  Alcotest.(check int) "retransmit events" 4
    (List.length (Abc_sim.Trace.find_kind trace ~label:"retransmit"))

let test_reliable_link_masks_loss () =
  (* 30% loss: the raw protocol generally goes quiescent short of
     quorum; the wrapped one must still complete on every seed. *)
  List.iter
    (fun seed ->
      let plan = Link_faults.make ~drop:0.3 () in
      let result =
        RRun.run
          (RRun.config ~n:4 ~f:1 ~inputs:(default_inputs 4)
             ~adversary:Adversary.uniform ~seed ~link_faults:plan ())
      in
      Alcotest.(check string) "stop" "all-terminal"
        (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.RRun.stop);
      Array.iter
        (fun outputs ->
          Alcotest.(check int) "one output" 1 (List.length outputs))
        result.RRun.outputs)
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_all_policies_complete () =
  List.iter
    (fun adversary ->
      let result = run ~n:7 ~f:2 ~adversary ~seed:3 () in
      check_stop Abc_net.Engine.All_terminal result)
    (Adversary.all_basic ~n:7)

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine runs are a function of the seed" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let r1 = run ~n:4 ~f:1 ~adversary:Adversary.uniform ~seed () in
      let r2 = run ~n:4 ~f:1 ~adversary:Adversary.uniform ~seed () in
      r1.Run.deliveries = r2.Run.deliveries && r1.Run.duration = r2.Run.duration)

let () =
  Alcotest.run "abc_net"
    [
      ( "engine",
        [
          Alcotest.test_case "all terminal, no faults" `Quick
            test_all_terminal_no_faults;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed changes schedule" `Quick test_seed_changes_schedule;
          Alcotest.test_case "metrics counts" `Quick test_metrics_counts;
          Alcotest.test_case "delivery limit" `Quick test_delivery_limit;
          Alcotest.test_case "quiescent detection" `Quick
            test_quiescent_when_quorum_unreachable;
          Alcotest.test_case "trace records" `Quick test_trace_records;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "honest listing" `Quick test_honest_listing;
          QCheck_alcotest.to_alcotest prop_engine_deterministic;
        ] );
      ( "envelope arena",
        [
          Alcotest.test_case "swap-remove layout" `Quick
            test_arena_swap_remove_layout;
          Alcotest.test_case "reuse after recycle" `Quick
            test_arena_reuse_after_recycle;
          Alcotest.test_case "oldest cursor" `Quick test_arena_oldest_cursor;
        ] );
      ( "behaviours",
        [
          Alcotest.test_case "silent" `Quick test_silent_node_sends_nothing;
          Alcotest.test_case "crash_after 0" `Quick test_crash_after_zero_is_silent;
          Alcotest.test_case "crash_after 1" `Quick test_crash_after_one_sends_init;
          Alcotest.test_case "mutate" `Quick test_mutate_consistent_lie;
          Alcotest.test_case "equivocate" `Quick test_equivocate_per_recipient;
          Alcotest.test_case "replay" `Quick test_replay_duplicates;
          Alcotest.test_case "labels" `Quick test_behaviour_labels;
        ] );
      ( "crash recovery",
        [
          Alcotest.test_case "amnesia cannot rejoin a quorum" `Quick
            test_crash_recover_amnesia_quiescent;
          Alcotest.test_case "durable store completes" `Quick
            test_crash_recover_durable_completes;
          Alcotest.test_case "crash/recover traced" `Quick
            test_crash_recover_traced;
          Alcotest.test_case "deterministic" `Quick
            test_crash_recover_deterministic;
          Alcotest.test_case "schedule validation" `Quick
            test_crash_recover_schedule_validation;
        ] );
      ( "sequence diagram",
        [
          Alcotest.test_case "render" `Quick test_sequence_diagram;
          Alcotest.test_case "window" `Quick test_sequence_diagram_window;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "view oldest" `Quick test_view_oldest;
          Alcotest.test_case "fifo" `Quick test_fifo_chooses_oldest;
          Alcotest.test_case "latency" `Quick test_latency_prefers_earliest_arrival;
          Alcotest.test_case "targeted delay" `Quick test_targeted_delay_starves_victim;
          Alcotest.test_case "source starve" `Quick test_source_starve;
          Alcotest.test_case "split" `Quick test_split_starves_cross_half;
          Alcotest.test_case "fairness override" `Quick
            test_fairness_overrides_starvation;
          Alcotest.test_case "all policies complete" `Quick test_all_policies_complete;
          Alcotest.test_case "fairness age bounded" `Quick test_fairness_age_bounded;
          Alcotest.test_case "rotating eclipse completes" `Quick
            test_rotating_eclipse_completes;
          Alcotest.test_case "rotating eclipse starves victim" `Quick
            test_rotating_eclipse_starves_current_victim;
        ] );
      ( "link faults",
        [
          Alcotest.test_case "drop all: exact counts" `Quick test_drop_all_counts;
          Alcotest.test_case "dup all: exact counts" `Quick test_dup_all_counts;
          Alcotest.test_case "partition isolates island" `Quick
            test_partition_isolates_island;
          Alcotest.test_case "partition heals" `Quick test_partition_heals;
          Alcotest.test_case "link events traced" `Quick test_link_events_traced;
          Alcotest.test_case "inactive plan is identity" `Quick
            test_inactive_plan_is_identity;
          QCheck_alcotest.to_alcotest prop_link_faults_deterministic;
        ] );
      ( "timers",
        [
          Alcotest.test_case "timers drive a quiet network" `Quick
            test_timers_drive_quiet_network;
          Alcotest.test_case "no timers means quiescent" `Quick
            test_no_timers_means_quiescent;
          Alcotest.test_case "timer events traced" `Quick test_timer_events_traced;
          Alcotest.test_case "crash invalidates timers" `Quick
            test_crash_invalidates_timers;
        ] );
      ( "reliable link",
        [
          Alcotest.test_case "transparent when faultless" `Quick
            test_reliable_link_transparent;
          Alcotest.test_case "retransmission schedule (hand-computed)" `Quick
            test_reliable_link_retransmission_schedule;
          Alcotest.test_case "retransmit events traced" `Quick
            test_reliable_link_retransmit_events_traced;
          Alcotest.test_case "masks 30% loss" `Quick test_reliable_link_masks_loss;
        ] );
    ]
