(* Tests for the abc_net substrate: adversary policies, behaviours and
   the execution engine, exercised through a small gossip protocol. *)

module Node_id = Abc_net.Node_id
module Protocol = Abc_net.Protocol
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module Engine = Abc_net.Engine

(* A toy protocol: every node broadcasts its input once; a node
   terminates after hearing n-f distinct values, outputting their sum.
   Small, but it exercises broadcasts, outputs, termination and
   fault/adversary plumbing. *)
module Gossip = struct
  type input = int
  type msg = Hello of int
  type output = Done of int

  type state = { heard : int Node_id.Map.t; quorum : int; finished : bool }

  let name = "gossip"

  let initial ctx input =
    ( { heard = Node_id.Map.empty; quorum = Protocol.Context.quorum ctx; finished = false },
      [ Protocol.Broadcast (Hello input) ] )

  let on_message _ctx state ~src (Hello v) =
    if state.finished || Node_id.Map.mem src state.heard then (state, [], [])
    else begin
      let heard = Node_id.Map.add src v state.heard in
      if Node_id.Map.cardinal heard >= state.quorum then
        let sum = Node_id.Map.fold (fun _ v acc -> acc + v) heard 0 in
        ({ state with heard; finished = true }, [], [ Done sum ])
      else ({ state with heard }, [], [])
    end

  let is_terminal (Done _) = true
  let msg_label (Hello _) = "hello"
  let pp_msg ppf (Hello v) = Fmt.pf ppf "hello(%d)" v
  let pp_output ppf (Done s) = Fmt.pf ppf "done(%d)" s
end

module Run = Engine.Make (Gossip)

let node = Node_id.of_int

let default_inputs n = Array.init n (fun i -> i + 1)

let run ?faulty ?adversary ?seed ?max_deliveries ?trace ~n ~f () =
  Run.run
    (Run.config ?faulty ?adversary ?seed ?max_deliveries ?trace ~n ~f
       ~inputs:(default_inputs n) ())

let check_stop expected result =
  Alcotest.(check string) "stop reason"
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason expected)
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.Run.stop)

(* Engine basics *)

let test_all_terminal_no_faults () =
  let result = run ~n:4 ~f:0 () in
  check_stop Abc_net.Engine.All_terminal result;
  (* With f=0 the quorum is all nodes, so every node sums everything. *)
  Array.iter
    (fun outputs ->
      match outputs with
      | [ (_, Gossip.Done sum) ] -> Alcotest.(check int) "sum" 10 sum
      | _ -> Alcotest.fail "expected exactly one output")
    result.Run.outputs

let test_determinism () =
  let r1 = run ~n:5 ~f:1 ~adversary:Adversary.uniform ~seed:7 () in
  let r2 = run ~n:5 ~f:1 ~adversary:Adversary.uniform ~seed:7 () in
  Alcotest.(check int) "same deliveries" r1.Run.deliveries r2.Run.deliveries;
  Alcotest.(check int) "same duration" r1.Run.duration r2.Run.duration;
  let sums r =
    Array.to_list r.Run.outputs
    |> List.concat_map (List.map (fun (_, Gossip.Done s) -> s))
  in
  Alcotest.(check (list int)) "same outputs" (sums r1) (sums r2)

let test_seed_changes_schedule () =
  let r1 = run ~n:5 ~f:1 ~adversary:Adversary.uniform ~seed:1 () in
  let r2 = run ~n:5 ~f:1 ~adversary:Adversary.uniform ~seed:2 () in
  (* Different schedules generally yield different quorum sums at some
     node; at minimum the runs must both succeed. *)
  check_stop Abc_net.Engine.All_terminal r1;
  check_stop Abc_net.Engine.All_terminal r2

let test_metrics_counts () =
  let result = run ~n:4 ~f:0 () in
  Alcotest.(check int) "sent = n*n" 16
    (Abc_sim.Metrics.counter result.Run.metrics "sent");
  Alcotest.(check int) "labelled counter" 16
    (Abc_sim.Metrics.counter result.Run.metrics "sent.hello");
  Alcotest.(check int) "delivered = deliveries" result.Run.deliveries
    (Abc_sim.Metrics.counter result.Run.metrics "delivered")

let test_delivery_limit () =
  let result = run ~n:4 ~f:0 ~max_deliveries:3 () in
  check_stop Abc_net.Engine.Delivery_limit result;
  Alcotest.(check int) "stopped at budget" 3 result.Run.deliveries

let test_quiescent_when_quorum_unreachable () =
  (* Two silent nodes but f=1: the quorum of 3 hellos can never be
     reached by the 2 remaining senders. *)
  let faulty = [ (node 2, Behaviour.Silent); (node 3, Behaviour.Silent) ] in
  let result = run ~n:4 ~f:1 ~faulty () in
  check_stop Abc_net.Engine.Quiescent result

let test_trace_records () =
  let trace = Abc_sim.Trace.create () in
  let _ = run ~n:4 ~f:0 ~trace () in
  Alcotest.(check bool) "delivers traced" true
    (List.length (Abc_sim.Trace.find_kind trace ~label:"deliver") > 0);
  Alcotest.(check bool) "outputs traced" true
    (List.length (Abc_sim.Trace.find_kind trace ~label:"output") > 0)

let test_config_validation () =
  Alcotest.check_raises "inputs arity"
    (Invalid_argument "Engine.config: inputs length must equal n") (fun () ->
      ignore (Run.config ~n:4 ~f:1 ~inputs:[| 1 |] ()));
  Alcotest.check_raises "faulty range"
    (Invalid_argument "Engine.config: faulty node id out of range") (fun () ->
      ignore
        (Run.config ~n:4 ~f:1
           ~faulty:[ (node 9, Behaviour.Silent) ]
           ~inputs:(default_inputs 4) ()))

let test_honest_listing () =
  let cfg =
    Run.config ~n:4 ~f:1
      ~faulty:[ (node 1, Behaviour.Silent) ]
      ~inputs:(default_inputs 4) ()
  in
  Alcotest.(check (list int)) "honest nodes" [ 0; 2; 3 ]
    (List.map Node_id.to_int (Run.honest cfg))

(* Behaviours *)

let test_silent_node_sends_nothing () =
  let faulty = [ (node 3, Behaviour.Silent) ] in
  let result = run ~n:4 ~f:1 ~faulty () in
  check_stop Abc_net.Engine.All_terminal result;
  (* 3 honest broadcasts of 4 messages each *)
  Alcotest.(check int) "sent" 12 (Abc_sim.Metrics.counter result.Run.metrics "sent");
  (* one suppressed logical action: the initial broadcast *)
  Alcotest.(check int) "dropped counted" 1
    (Abc_sim.Metrics.counter result.Run.metrics "dropped.faulty")

let test_crash_after_zero_is_silent () =
  let faulty = [ (node 3, Behaviour.Crash_after 0) ] in
  let result = run ~n:4 ~f:1 ~faulty () in
  check_stop Abc_net.Engine.All_terminal result;
  Alcotest.(check int) "sent" 12 (Abc_sim.Metrics.counter result.Run.metrics "sent")

let test_crash_after_one_sends_init () =
  let faulty = [ (node 3, Behaviour.Crash_after 1) ] in
  let result = run ~n:4 ~f:1 ~faulty () in
  check_stop Abc_net.Engine.All_terminal result;
  (* The initial broadcast (activation 0) goes out, nothing after. *)
  Alcotest.(check int) "sent" 16 (Abc_sim.Metrics.counter result.Run.metrics "sent")

let test_mutate_consistent_lie () =
  (* The liar reports 100 to everyone: every node that counts the liar
     in its quorum sees the same corrupted value. *)
  let faulty = [ (node 0, Behaviour.Mutate (fun _rng (Gossip.Hello _) -> Gossip.Hello 100)) ] in
  let result = run ~n:4 ~f:0 ~faulty () in
  check_stop Abc_net.Engine.All_terminal result;
  List.iter
    (fun i ->
      match result.Run.outputs.(i) with
      | [ (_, Gossip.Done sum) ] ->
        (* inputs 2+3+4 plus the lie 100 *)
        Alcotest.(check int) "corrupted sum" 109 sum
      | _ -> Alcotest.fail "expected one output")
    [ 1; 2; 3 ]

let test_equivocate_per_recipient () =
  (* Node 0 tells each node its own id as the value. *)
  let forge _rng ~dst (Gossip.Hello _) = Gossip.Hello (1000 * Node_id.to_int dst) in
  let faulty = [ (node 0, Behaviour.Equivocate forge) ] in
  let result = run ~n:4 ~f:0 ~faulty () in
  check_stop Abc_net.Engine.All_terminal result;
  List.iter
    (fun i ->
      match result.Run.outputs.(i) with
      | [ (_, Gossip.Done sum) ] ->
        Alcotest.(check int) "per-recipient lie" (9 + (1000 * i)) sum
      | _ -> Alcotest.fail "expected one output")
    [ 1; 2; 3 ]

let test_replay_duplicates () =
  let faulty = [ (node 0, Behaviour.Replay 2) ] in
  let result = run ~n:4 ~f:0 ~faulty () in
  check_stop Abc_net.Engine.All_terminal result;
  (* node 0 sends 3x4 = 12, others 4 each -> 24; duplicates are ignored
     by the dedup logic so sums stay correct. *)
  Alcotest.(check int) "sent with replay" 24
    (Abc_sim.Metrics.counter result.Run.metrics "sent");
  match result.Run.outputs.(1) with
  | [ (_, Gossip.Done sum) ] -> Alcotest.(check int) "dedup holds" 10 sum
  | _ -> Alcotest.fail "expected one output"

let test_behaviour_labels () =
  Alcotest.(check string) "honest" "honest" (Behaviour.label Behaviour.Honest);
  Alcotest.(check string) "silent" "silent" (Behaviour.label Behaviour.Silent);
  Alcotest.(check string) "crash" "crash" (Behaviour.label (Behaviour.Crash_after 3));
  Alcotest.(check string) "replay" "replay" (Behaviour.label (Behaviour.Replay 1))

(* Sequence diagram *)

let test_sequence_diagram () =
  let trace = Abc_sim.Trace.create () in
  let _ = run ~n:4 ~f:0 ~trace () in
  let diagram = Abc_net.Sequence_diagram.render trace ~n:4 in
  let lines = String.split_on_char '\n' diagram in
  (* header + one line per delivery + one per output + trailing "" *)
  Alcotest.(check bool) "has header" true
    (String.length (List.hd lines) > 0 && String.sub (List.hd lines) 0 4 = "time");
  Alcotest.(check bool) "draws arrows" true
    (List.exists (fun l -> String.contains l '>') lines
    || List.exists (fun l -> String.contains l '<') lines);
  Alcotest.(check bool) "marks outputs" true
    (List.exists (fun l -> String.contains l '!') lines);
  (* 16 deliveries + 4 outputs + header + trailing empty *)
  Alcotest.(check bool)
    (Printf.sprintf "line count plausible (%d)" (List.length lines))
    true
    (List.length lines >= 20)

let test_sequence_diagram_window () =
  let trace = Abc_sim.Trace.create () in
  let _ = run ~n:4 ~f:0 ~trace () in
  let full = Abc_net.Sequence_diagram.render trace ~n:4 in
  let window =
    Abc_net.Sequence_diagram.render_window trace ~n:4 ~from_time:0 ~to_time:3
  in
  Alcotest.(check bool) "window smaller" true
    (String.length window < String.length full)

(* Adversary policies *)

let meta ~seq ~src ~dst ?(sent_at = 0) ?(priority = 0) () =
  { Adversary.seq; src = node src; dst = node dst; sent_at; priority }

let view_of_list metas =
  let arr = Array.of_list metas in
  let oldest () =
    let best = ref 0 in
    Array.iteri
      (fun i m -> if m.Adversary.seq < arr.(!best).Adversary.seq then best := i)
      arr;
    !best
  in
  let find_seq seq =
    let found = ref None in
    Array.iteri (fun i m -> if m.Adversary.seq = seq then found := Some i) arr;
    !found
  in
  Adversary.View.make ~length:(Array.length arr) ~get:(Array.get arr) ~oldest
    ~find_seq

(* Instantiate a policy and feed it the view's entries (as [note]
   expects) before choosing. *)
let choose_with policy ~rng ~now view metas =
  let instance = policy.Adversary.instantiate () in
  List.iter instance.Adversary.note metas;
  instance.Adversary.choose ~rng ~now view

let test_view_oldest () =
  let v =
    view_of_list
      [ meta ~seq:5 ~src:0 ~dst:1 (); meta ~seq:2 ~src:1 ~dst:0 (); meta ~seq:9 ~src:2 ~dst:0 () ]
  in
  Alcotest.(check int) "oldest index" 1 (Adversary.View.oldest v)

let test_fifo_chooses_oldest () =
  let rng = Abc_prng.Stream.root ~seed:0 in
  let metas = [ meta ~seq:3 ~src:0 ~dst:1 (); meta ~seq:1 ~src:1 ~dst:2 () ] in
  let v = view_of_list metas in
  Alcotest.(check int) "fifo" 1 (choose_with Adversary.fifo ~rng ~now:0 v metas)

let test_latency_prefers_earliest_arrival () =
  let rng = Abc_prng.Stream.root ~seed:0 in
  let policy = Adversary.latency ~mean:5. in
  let metas =
    [ meta ~seq:1 ~src:0 ~dst:1 ~priority:50 (); meta ~seq:2 ~src:1 ~dst:2 ~priority:3 () ]
  in
  let v = view_of_list metas in
  Alcotest.(check int) "min priority wins" 1 (choose_with policy ~rng ~now:0 v metas)

let test_targeted_delay_starves_victim () =
  let rng = Abc_prng.Stream.root ~seed:0 in
  let policy = Adversary.targeted_delay ~victims:[ node 1 ] in
  let metas = [ meta ~seq:1 ~src:0 ~dst:1 (); meta ~seq:2 ~src:0 ~dst:2 () ] in
  let v = view_of_list metas in
  Alcotest.(check int) "victim starved" 1 (choose_with policy ~rng ~now:0 v metas)

let test_source_starve () =
  let rng = Abc_prng.Stream.root ~seed:0 in
  let policy = Adversary.source_starve ~victims:[ node 0 ] in
  let metas = [ meta ~seq:1 ~src:0 ~dst:1 (); meta ~seq:2 ~src:1 ~dst:2 () ] in
  let v = view_of_list metas in
  Alcotest.(check int) "victim's messages starved" 1
    (choose_with policy ~rng ~now:0 v metas)

let test_split_starves_cross_half () =
  let rng = Abc_prng.Stream.root ~seed:0 in
  let policy = Adversary.split ~n:4 in
  let metas =
    [ meta ~seq:1 ~src:0 ~dst:3 (); (* cross-half *) meta ~seq:2 ~src:2 ~dst:3 () ]
  in
  let v = view_of_list metas in
  Alcotest.(check int) "same-half preferred" 1 (choose_with policy ~rng ~now:0 v metas)

let test_fairness_overrides_starvation () =
  (* Under targeted-delay the victim must still terminate thanks to the
     engine's fairness bound. *)
  let result =
    run ~n:4 ~f:0 ~adversary:(Adversary.targeted_delay ~victims:[ node 1 ]) ()
  in
  check_stop Abc_net.Engine.All_terminal result;
  Alcotest.(check bool) "victim produced output" true
    (List.length result.Run.outputs.(1) = 1)

let test_fairness_age_bounded () =
  (* The fairness audit: even under pure starvation the oldest message
     is forced out at the age bound, so no delivery age can exceed the
     bound by more than the backlog drained one-per-tick. *)
  let result =
    run ~n:4 ~f:0 ~adversary:(Adversary.targeted_delay ~victims:[ node 1 ]) ()
  in
  check_stop Abc_net.Engine.All_terminal result;
  let bound = 32 * 4 * 4 in
  let max_age = Abc_sim.Metrics.counter result.Run.metrics "max_delivery_age" in
  Alcotest.(check bool)
    (Printf.sprintf "max age %d within bound %d + backlog" max_age (bound + 64))
    true
    (max_age <= bound + 64)

let test_rotating_eclipse_completes () =
  (* Victim rotation must not break liveness. *)
  List.iter
    (fun seed ->
      let result =
        run ~n:5 ~f:1 ~adversary:(Adversary.rotating_eclipse ~n:5 ~period:3) ~seed ()
      in
      check_stop Abc_net.Engine.All_terminal result)
    [ 0; 1; 2; 3; 4 ]

let test_rotating_eclipse_starves_current_victim () =
  let rng = Abc_prng.Stream.root ~seed:0 in
  let policy = Adversary.rotating_eclipse ~n:3 ~period:100 in
  let instance = policy.Adversary.instantiate () in
  (* Two messages: one to the initial victim (node 0), one to node 1:
     the non-victim message must be chosen first. *)
  let metas = [ meta ~seq:1 ~src:2 ~dst:0 (); meta ~seq:2 ~src:2 ~dst:1 () ] in
  let v = view_of_list metas in
  List.iter instance.Adversary.note metas;
  Alcotest.(check int) "avoids victim" 1 (instance.Adversary.choose ~rng ~now:0 v)

let test_all_policies_complete () =
  List.iter
    (fun adversary ->
      let result = run ~n:7 ~f:2 ~adversary ~seed:3 () in
      check_stop Abc_net.Engine.All_terminal result)
    (Adversary.all_basic ~n:7)

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine runs are a function of the seed" ~count:30
    QCheck.(small_int)
    (fun seed ->
      let r1 = run ~n:4 ~f:1 ~adversary:Adversary.uniform ~seed () in
      let r2 = run ~n:4 ~f:1 ~adversary:Adversary.uniform ~seed () in
      r1.Run.deliveries = r2.Run.deliveries && r1.Run.duration = r2.Run.duration)

let () =
  Alcotest.run "abc_net"
    [
      ( "engine",
        [
          Alcotest.test_case "all terminal, no faults" `Quick
            test_all_terminal_no_faults;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed changes schedule" `Quick test_seed_changes_schedule;
          Alcotest.test_case "metrics counts" `Quick test_metrics_counts;
          Alcotest.test_case "delivery limit" `Quick test_delivery_limit;
          Alcotest.test_case "quiescent detection" `Quick
            test_quiescent_when_quorum_unreachable;
          Alcotest.test_case "trace records" `Quick test_trace_records;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "honest listing" `Quick test_honest_listing;
          QCheck_alcotest.to_alcotest prop_engine_deterministic;
        ] );
      ( "behaviours",
        [
          Alcotest.test_case "silent" `Quick test_silent_node_sends_nothing;
          Alcotest.test_case "crash_after 0" `Quick test_crash_after_zero_is_silent;
          Alcotest.test_case "crash_after 1" `Quick test_crash_after_one_sends_init;
          Alcotest.test_case "mutate" `Quick test_mutate_consistent_lie;
          Alcotest.test_case "equivocate" `Quick test_equivocate_per_recipient;
          Alcotest.test_case "replay" `Quick test_replay_duplicates;
          Alcotest.test_case "labels" `Quick test_behaviour_labels;
        ] );
      ( "sequence diagram",
        [
          Alcotest.test_case "render" `Quick test_sequence_diagram;
          Alcotest.test_case "window" `Quick test_sequence_diagram_window;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "view oldest" `Quick test_view_oldest;
          Alcotest.test_case "fifo" `Quick test_fifo_chooses_oldest;
          Alcotest.test_case "latency" `Quick test_latency_prefers_earliest_arrival;
          Alcotest.test_case "targeted delay" `Quick test_targeted_delay_starves_victim;
          Alcotest.test_case "source starve" `Quick test_source_starve;
          Alcotest.test_case "split" `Quick test_split_starves_cross_half;
          Alcotest.test_case "fairness override" `Quick
            test_fairness_overrides_starvation;
          Alcotest.test_case "all policies complete" `Quick test_all_policies_complete;
          Alcotest.test_case "fairness age bounded" `Quick test_fairness_age_bounded;
          Alcotest.test_case "rotating eclipse completes" `Quick
            test_rotating_eclipse_completes;
          Alcotest.test_case "rotating eclipse starves victim" `Quick
            test_rotating_eclipse_starves_current_victim;
        ] );
    ]
