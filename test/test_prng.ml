(* Unit and property tests for the abc_prng library. *)

module Stream = Abc_prng.Stream
module Splitmix64 = Abc_prng.Splitmix64
module Xoshiro256 = Abc_prng.Xoshiro256

let test_splitmix_deterministic () =
  let a = Splitmix64.create 42L and b = Splitmix64.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same sequence" (Splitmix64.next a) (Splitmix64.next b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Splitmix64.create 1L and b = Splitmix64.create 2L in
  Alcotest.(check bool) "different outputs" false
    (Int64.equal (Splitmix64.next a) (Splitmix64.next b))

let test_mix_bijective_on_samples () =
  (* mix is a bijection; at minimum distinct inputs give distinct
     outputs on a sample. *)
  let seen = Hashtbl.create 1024 in
  for i = 0 to 1023 do
    let out = Splitmix64.mix (Int64.of_int i) in
    Alcotest.(check bool)
      (Printf.sprintf "no collision at %d" i)
      false (Hashtbl.mem seen out);
    Hashtbl.add seen out ()
  done

let test_xoshiro_deterministic () =
  let a = Xoshiro256.create 7L and b = Xoshiro256.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same sequence" (Xoshiro256.next a) (Xoshiro256.next b)
  done

let test_xoshiro_copy_independent () =
  let a = Xoshiro256.create 7L in
  let _ = Xoshiro256.next a in
  let b = Xoshiro256.copy a in
  let xa = Xoshiro256.next a in
  let xb = Xoshiro256.next b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  (* advancing the copy further must not affect the original *)
  let _ = Xoshiro256.next b in
  let _ = Xoshiro256.next b in
  let a' = Xoshiro256.copy a in
  Alcotest.(check int64) "original unaffected" (Xoshiro256.next a)
    (Xoshiro256.next a')

let test_stream_split_stable () =
  (* Splitting does not depend on how much the parent has drawn. *)
  let p1 = Stream.root ~seed:5 in
  let p2 = Stream.root ~seed:5 in
  let _ = Stream.bits64 p2 in
  let _ = Stream.bits64 p2 in
  let c1 = Stream.split p1 ~label:3 and c2 = Stream.split p2 ~label:3 in
  Alcotest.(check int64) "same child key" (Stream.key c1) (Stream.key c2);
  Alcotest.(check int64) "same child output" (Stream.bits64 c1) (Stream.bits64 c2)

let test_stream_split_labels_distinct () =
  let p = Stream.root ~seed:5 in
  let c0 = Stream.split p ~label:0 and c1 = Stream.split p ~label:1 in
  Alcotest.(check bool) "distinct keys" false
    (Int64.equal (Stream.key c0) (Stream.key c1))

let test_stream_split_path_sensitive () =
  (* split(split(r, a), b) must differ from split(split(r, b), a) *)
  let r () = Stream.root ~seed:11 in
  let ab = Stream.split (Stream.split (r ()) ~label:1) ~label:2 in
  let ba = Stream.split (Stream.split (r ()) ~label:2) ~label:1 in
  Alcotest.(check bool) "path matters" false
    (Int64.equal (Stream.key ab) (Stream.key ba))

let test_int_bounds () =
  let s = Stream.root ~seed:1 in
  for _ = 1 to 10_000 do
    let v = Stream.int s ~bound:7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_int_covers_range () =
  let s = Stream.root ~seed:2 in
  let seen = Array.make 7 false in
  for _ = 1 to 10_000 do
    seen.(Stream.int s ~bound:7) <- true
  done;
  Array.iteri
    (fun i hit -> Alcotest.(check bool) (Printf.sprintf "value %d drawn" i) true hit)
    seen

let test_float_range () =
  let s = Stream.root ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Stream.float s in
    Alcotest.(check bool) "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_bool_balanced () =
  let s = Stream.root ~seed:4 in
  let trues = ref 0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    if Stream.bool s then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "fair within 1%% (got %.3f)" ratio)
    true
    (ratio > 0.49 && ratio < 0.51)

let test_int_uniformity_chi_square () =
  let s = Stream.root ~seed:6 in
  let buckets = 10 in
  let trials = 100_000 in
  let counts = Array.make buckets 0 in
  for _ = 1 to trials do
    let i = Stream.int s ~bound:buckets in
    counts.(i) <- counts.(i) + 1
  done;
  let expected = float_of_int trials /. float_of_int buckets in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. counts
  in
  (* 9 degrees of freedom: critical value at p=0.001 is 27.88. *)
  Alcotest.(check bool)
    (Printf.sprintf "chi-square %.2f < 27.88" chi2)
    true (chi2 < 27.88)

let test_exponential_mean () =
  let s = Stream.root ~seed:7 in
  let trials = 100_000 in
  let sum = ref 0. in
  for _ = 1 to trials do
    let v = Stream.exponential s ~mean:8. in
    Alcotest.(check bool) "non-negative" true (v >= 0.);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "mean close to 8 (got %.2f)" mean)
    true
    (mean > 7.7 && mean < 8.3)

let test_bernoulli_probability () =
  let s = Stream.root ~seed:8 in
  let trials = 100_000 in
  let hits = ref 0 in
  for _ = 1 to trials do
    if Stream.bernoulli s ~p:0.2 then incr hits
  done;
  let ratio = float_of_int !hits /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "p=0.2 within tolerance (got %.3f)" ratio)
    true
    (ratio > 0.19 && ratio < 0.21)

let test_shuffle_permutation () =
  let s = Stream.root ~seed:9 in
  let arr = Array.init 50 (fun i -> i) in
  Stream.shuffle_in_place s arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_pick_in_array () =
  let s = Stream.root ~seed:10 in
  let arr = [| 2; 4; 8 |] in
  for _ = 1 to 100 do
    let v = Stream.pick s arr in
    Alcotest.(check bool) "element of array" true (Array.exists (Int.equal v) arr)
  done

(* Property-based tests *)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Stream.int always within bound" ~count:1000
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let s = Stream.root ~seed in
      let v = Stream.int s ~bound in
      v >= 0 && v < bound)

let prop_split_deterministic =
  QCheck.Test.make ~name:"split is a pure function of (seed, label)" ~count:500
    QCheck.(pair small_int small_int)
    (fun (seed, label) ->
      let a = Stream.split (Stream.root ~seed) ~label in
      let b = Stream.split (Stream.root ~seed) ~label in
      Int64.equal (Stream.bits64 a) (Stream.bits64 b))

let () =
  Alcotest.run "abc_prng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_splitmix_seed_sensitivity;
          Alcotest.test_case "mix injective on sample" `Quick
            test_mix_bijective_on_samples;
        ] );
      ( "xoshiro256",
        [
          Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "copy independent" `Quick test_xoshiro_copy_independent;
        ] );
      ( "stream",
        [
          Alcotest.test_case "split stable" `Quick test_stream_split_stable;
          Alcotest.test_case "split labels distinct" `Quick
            test_stream_split_labels_distinct;
          Alcotest.test_case "split path sensitive" `Quick
            test_stream_split_path_sensitive;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int covers range" `Quick test_int_covers_range;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "bool balanced" `Quick test_bool_balanced;
          Alcotest.test_case "chi-square uniformity" `Quick
            test_int_uniformity_chi_square;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "bernoulli probability" `Quick
            test_bernoulli_probability;
          Alcotest.test_case "shuffle is permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "pick in array" `Quick test_pick_in_array;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_int_in_bounds;
          QCheck_alcotest.to_alcotest prop_split_deterministic;
        ] );
    ]
