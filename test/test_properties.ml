(* Cross-protocol property battery: one scenario vocabulary (size,
   resilience, fault placement, adversary, inputs, optional lossy
   links), one campaign runner, instantiated over all nine protocols
   in the library.  Each protocol asserts the properties it actually
   promises — totality for the reliable broadcasts (Bracha, erasure-
   coded, Imbs-Raynal) but not for consistent broadcast, full
   consensus for Bracha/Ben-Or/MMR, agreement-or-joint-fallback for
   Turpin–Coan, identical common subsets for ACS.

   The battery runs on the Exec.Pool at jobs > 1 on purpose: scenarios
   are generated up front on the main domain from a pinned seed
   (QCHECK_SEED, default 421984) and evaluated concurrently, so the
   suite doubles as a standing check that concurrent engine runs do not
   interfere with each other. *)

module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module Link_faults = Abc_net.Link_faults
module Value = Abc.Value
module Pool = Abc_exec.Pool

let node = Node_id.of_int

(* At least two workers even on a single-core machine: correctness
   under concurrent evaluation is the point, speed is a bonus. *)
let pool = Pool.create ~jobs:(max 2 (Pool.default_jobs ())) ()

let battery_seed =
  match Option.bind (Sys.getenv_opt "QCHECK_SEED") int_of_string_opt with
  | Some seed -> seed
  | None -> 421984

(* ---- scenario vocabulary ---- *)

type loss = {
  loss_pct : int; (* 0..15 *)
  dup_pct : int; (* 0..10 *)
  cut : (int * int * int) option; (* from, length, island node *)
}

type scenario = {
  n : int;
  f : int;
  faults : int; (* actual faulty nodes, highest ids *)
  silent : bool; (* silent vs crash behaviour *)
  adversary_kind : int; (* 0..5 *)
  input_pattern : int; (* 0..2 *)
  loss : loss option; (* lossy links => reliable-channel transport *)
  seed : int;
}

let scenario_gen ~max_n ~max_loss ~max_f_of =
  QCheck.Gen.(
    int_range 4 max_n >>= fun n ->
    let fmax = max 0 (max_f_of n) in
    int_range 0 fmax >>= fun f ->
    int_range 0 f >>= fun faults ->
    bool >>= fun silent ->
    int_range 0 5 >>= fun adversary_kind ->
    int_range 0 2 >>= fun input_pattern ->
    bool >>= fun lossy ->
    int_range 0 max_loss >>= fun loss_pct ->
    int_range 0 ((max_loss * 2) / 3) >>= fun dup_pct ->
    bool >>= fun with_cut ->
    int_range 0 40 >>= fun cut_from ->
    int_range 1 150 >>= fun cut_len ->
    int_range 0 (n - 1) >>= fun cut_node ->
    int_range 0 1000 >>= fun seed ->
    let loss =
      if lossy then
        Some
          {
            loss_pct;
            dup_pct;
            cut = (if with_cut then Some (cut_from, cut_len, cut_node) else None);
          }
      else None
    in
    return { n; f; faults; silent; adversary_kind; input_pattern; loss; seed })

let print_scenario s =
  Printf.sprintf "{n=%d f=%d faults=%d silent=%b adv=%d inputs=%d loss=%s seed=%d}"
    s.n s.f s.faults s.silent s.adversary_kind s.input_pattern
    (match s.loss with
    | None -> "none"
    | Some l ->
      Printf.sprintf "%d%%/%d%%%s" l.loss_pct l.dup_pct
        (match l.cut with
        | None -> ""
        | Some (a, len, v) -> Printf.sprintf "+cut[%d,%d)@%d" a (a + len) v))
    s.seed

let adversary_of s =
  match s.adversary_kind with
  | 0 -> Adversary.fifo
  | 1 -> Adversary.uniform
  | 2 -> Adversary.latency ~mean:6.
  | 3 -> Adversary.targeted_delay ~victims:[ node 0 ]
  | 4 -> Adversary.split ~n:s.n
  | _ -> Adversary.rotating_eclipse ~n:s.n ~period:5

(* Cuts always heal: permanent partitions defeat any transport and
   belong to the targeted lossy tests, not a liveness battery. *)
let plan_of l =
  let cuts =
    match l.cut with
    | None -> []
    | Some (from_tick, len, v) ->
      [ Link_faults.cut ~from_tick ~until_tick:(from_tick + len) [ node v ] ]
  in
  Link_faults.make
    ~drop:(float_of_int l.loss_pct /. 100.)
    ~dup:(float_of_int l.dup_pct /. 100.)
    ~cuts ()

(* Faults stay message-agnostic (silence and crashes): mutator faults
   are protocol-specific and exercised by the chaos campaigns; this
   battery keeps one behaviour vocabulary across all seven subjects. *)
let faulty_of s =
  let behaviour =
    if s.silent then Behaviour.Silent else Behaviour.Crash_after (s.seed mod 7)
  in
  List.init s.faults (fun k -> (node (s.n - 1 - k), behaviour))

let binary_values s =
  match s.input_pattern with
  | 0 -> Array.make s.n Value.Zero
  | 1 -> Array.make s.n Value.One
  | _ -> Array.init s.n (fun i -> if i < s.n / 2 then Value.Zero else Value.One)

let honest_indices s = List.init (s.n - s.faults) (fun i -> i)

(* ---- campaign runner ---- *)

let campaign ~name ~count gen print prop =
  Alcotest.test_case name `Slow (fun () ->
      let rand = Random.State.make [| battery_seed |] in
      let scenarios = List.init count (fun _ -> QCheck.Gen.generate1 ~rand gen) in
      let verdicts = Pool.map_list pool (fun s -> prop s) scenarios in
      let failures =
        List.filter_map
          (fun (s, ok) -> if ok then None else Some (print s))
          (List.combine scenarios verdicts)
      in
      if failures <> [] then
        Alcotest.failf "%d/%d scenarios failed (QCHECK_SEED=%d): %s"
          (List.length failures) count battery_seed
          (String.concat " " failures))

(* One battery subject = a resilience bound plus a property checker.
   The checker sees scenarios already inside the bound and decides
   whether the protocol kept its promises on that run.  [max_n] and
   [max_loss] bound the scenario space per subject: ACS multiplies n
   broadcasts by n binary agreements, so its lossy runs must stay
   small enough for the retransmission traffic to fit the delivery
   budget (correctness is the point, not a race against the cap). *)
module type SUBJECT = sig
  val name : string

  val count : int

  val max_n : int

  val max_loss : int

  val max_f : n:int -> int

  val check : scenario -> bool
end

module Battery (S : SUBJECT) = struct
  let test =
    campaign ~name:S.name ~count:S.count
      (scenario_gen ~max_n:S.max_n ~max_loss:S.max_loss
         ~max_f_of:(fun n -> S.max_f ~n))
      print_scenario S.check
end

(* Engines: each subject needs the raw protocol and its reliable-link
   wrapping (used whenever the scenario draws a lossy plan). *)

let budget l = match l with Some _ -> Some 4_000_000 | None -> None

(* ---- 1. Bracha reliable broadcast ---- *)

module Rbc = Abc.Bracha_rbc.Binary
module RbcE = Abc_net.Engine.Make (Rbc)
module RbcRL = Abc_net.Reliable_link.Make (Rbc)
module RbcRLE = Abc_net.Engine.Make (RbcRL)

module Rbc_subject = struct
  let name = "bracha rbc: validity, agreement, totality"

  let count = 60

  let max_n = 10

  let max_loss = 15

  let max_f ~n = (n - 1) / 3

  (* Honest designated sender (node 0; faults sit at the tail), so the
     full promise applies: every honest node delivers exactly the
     broadcast value. *)
  let check s =
    let v = if s.input_pattern = 1 then Value.One else Value.Zero in
    let inputs = Rbc.inputs ~n:s.n ~sender:(node 0) v in
    let delivered_ok outputs stop =
      stop = Abc_net.Engine.All_terminal
      && List.for_all
           (fun i ->
             match outputs.(i) with
             | [ (_, Rbc.Delivered d) ] -> d = v
             | _ -> false)
           (honest_indices s)
    in
    match s.loss with
    | None ->
      let r =
        RbcE.run
          (RbcE.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
             ~adversary:(adversary_of s) ~seed:s.seed ())
      in
      delivered_ok r.RbcE.outputs r.RbcE.stop
    | Some l ->
      let r =
        RbcRLE.run
          (RbcRLE.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
             ~adversary:(adversary_of s) ~seed:s.seed ~link_faults:(plan_of l)
             ?max_deliveries:(budget s.loss) ())
      in
      delivered_ok r.RbcRLE.outputs r.RbcRLE.stop
end

module Rbc_battery = Battery (Rbc_subject)

(* ---- 2. Consistent (echo-only) broadcast ---- *)

module Cb = Abc.Consistent_broadcast.Binary
module CbE = Abc_net.Engine.Make (Cb)
module CbRL = Abc_net.Reliable_link.Make (Cb)
module CbRLE = Abc_net.Engine.Make (CbRL)

module Cb_subject = struct
  let name = "consistent broadcast: validity and consistency (no totality)"

  let count = 60

  let max_n = 10

  let max_loss = 15

  let max_f ~n = (n - 1) / 3

  (* The weaker primitive promises only that delivered values agree —
     so the property checks every honest delivery carries the broadcast
     value and stays silent about who delivered. *)
  let check s =
    let v = if s.input_pattern = 1 then Value.One else Value.Zero in
    let inputs = Cb.inputs ~n:s.n ~sender:(node 0) v in
    let consistent outputs =
      List.for_all
        (fun i ->
          List.for_all (fun (_, Cb.Delivered d) -> d = v) outputs.(i))
        (honest_indices s)
    in
    match s.loss with
    | None ->
      let r =
        CbE.run
          (CbE.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
             ~adversary:(adversary_of s) ~seed:s.seed ())
      in
      consistent r.CbE.outputs
    | Some l ->
      let r =
        CbRLE.run
          (CbRLE.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
             ~adversary:(adversary_of s) ~seed:s.seed ~link_faults:(plan_of l)
             ?max_deliveries:(budget s.loss) ())
      in
      consistent r.CbRLE.outputs
end

module Cb_battery = Battery (Cb_subject)

(* ---- 2b. Erasure-coded reliable broadcast ---- *)

module Coded = Abc.Coded_rbc
module CodedE = Abc_net.Engine.Make (Coded)
module CodedRL = Abc_net.Reliable_link.Make (Coded)
module CodedRLE = Abc_net.Engine.Make (CodedRL)

module Coded_subject = struct
  let name = "coded rbc: validity, agreement, totality"

  let count = 50

  let max_n = 10

  let max_loss = 15

  let max_f ~n = (n - 1) / 3

  (* Same promise as Bracha's RBC, different wire format: the payload
     is a byte string dispersed as Reed-Solomon fragments, so the
     checker also asserts it survives reconstruction bit-for-bit. *)
  let check s =
    let payload =
      String.init
        (match s.input_pattern with 0 -> 1 | 1 -> 64 | _ -> 777)
        (fun i -> Char.chr ((s.seed + (13 * i)) land 0xFF))
    in
    let inputs = Coded.inputs ~n:s.n ~sender:(node 0) payload in
    let delivered_ok outputs stop =
      stop = Abc_net.Engine.All_terminal
      && List.for_all
           (fun i ->
             match outputs.(i) with
             | [ (_, Coded.Delivered d) ] -> String.equal d payload
             | _ -> false)
           (honest_indices s)
    in
    match s.loss with
    | None ->
      let r =
        CodedE.run
          (CodedE.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
             ~adversary:(adversary_of s) ~seed:s.seed ())
      in
      delivered_ok r.CodedE.outputs r.CodedE.stop
    | Some l ->
      let r =
        CodedRLE.run
          (CodedRLE.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
             ~adversary:(adversary_of s) ~seed:s.seed ~link_faults:(plan_of l)
             ?max_deliveries:(budget s.loss) ())
      in
      delivered_ok r.CodedRLE.outputs r.CodedRLE.stop
end

module Coded_battery = Battery (Coded_subject)

(* ---- 2c. Imbs-Raynal two-phase reliable broadcast ---- *)

module Ir = Abc.Ir_rbc.Binary
module IrE = Abc_net.Engine.Make (Ir)
module IrRL = Abc_net.Reliable_link.Make (Ir)
module IrRLE = Abc_net.Engine.Make (IrRL)

module Ir_subject = struct
  let name = "imbs-raynal rbc: validity, agreement, totality at n>5f"

  let count = 50

  let max_n = 12

  let max_loss = 15

  (* The efficiency trade: only f < n/5 tolerated. *)
  let max_f ~n = (n - 1) / 5

  let check s =
    let v = if s.input_pattern = 1 then Value.One else Value.Zero in
    let inputs = Ir.inputs ~n:s.n ~sender:(node 0) v in
    let delivered_ok outputs stop =
      stop = Abc_net.Engine.All_terminal
      && List.for_all
           (fun i ->
             match outputs.(i) with
             | [ (_, Ir.Delivered d) ] -> d = v
             | _ -> false)
           (honest_indices s)
    in
    match s.loss with
    | None ->
      let r =
        IrE.run
          (IrE.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
             ~adversary:(adversary_of s) ~seed:s.seed ())
      in
      delivered_ok r.IrE.outputs r.IrE.stop
    | Some l ->
      let r =
        IrRLE.run
          (IrRLE.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
             ~adversary:(adversary_of s) ~seed:s.seed ~link_faults:(plan_of l)
             ?max_deliveries:(budget s.loss) ())
      in
      delivered_ok r.IrRLE.outputs r.IrRLE.stop
end

module Ir_battery = Battery (Ir_subject)

(* ---- consensus subjects share the harness verdict ---- *)

module B = Abc.Bracha_consensus

module BH = Abc.Harness.Make (struct
  include B

  let value_of_input = B.value_of_input
end)

module BRL = Abc_net.Reliable_link.Make (B)

module BRLH = Abc.Harness.Make (struct
  include BRL

  let value_of_input = B.value_of_input
end)

(* ---- 3. Bracha consensus ---- *)

module Bracha_subject = struct
  let name = "bracha consensus: termination, agreement, validity"

  let count = 60

  let max_n = 10

  let max_loss = 15

  let max_f ~n = (n - 1) / 3

  let check s =
    let inputs = B.inputs ~n:s.n ~options:B.Options.default (binary_values s) in
    match s.loss with
    | None ->
      let cfg =
        BH.E.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
          ~adversary:(adversary_of s) ~seed:s.seed ()
      in
      Abc.Harness.ok (snd (BH.run cfg))
    | Some l ->
      let cfg =
        BRLH.E.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
          ~adversary:(adversary_of s) ~seed:s.seed ~link_faults:(plan_of l)
          ?max_deliveries:(budget s.loss) ()
      in
      Abc.Harness.ok (snd (BRLH.run cfg))
end

module Bracha_battery = Battery (Bracha_subject)

(* ---- 4. Ben-Or ---- *)

module BO = Abc.Ben_or

module BOH = Abc.Harness.Make (struct
  include BO

  let value_of_input = BO.value_of_input
end)

module BORL = Abc_net.Reliable_link.Make (BO)

module BORLH = Abc.Harness.Make (struct
  include BORL

  let value_of_input = BO.value_of_input
end)

module Benor_subject = struct
  let name = "ben-or: termination, agreement, validity"

  let count = 50

  let max_n = 10

  let max_loss = 15

  let max_f ~n = (n - 1) / 5

  let check s =
    let inputs =
      BO.inputs ~n:s.n ~mode:BO.Mode.Byzantine ~coin:Abc.Coin.local
        (binary_values s)
    in
    match s.loss with
    | None ->
      let cfg =
        BOH.E.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
          ~adversary:(adversary_of s) ~seed:s.seed ()
      in
      Abc.Harness.ok (snd (BOH.run cfg))
    | Some l ->
      let cfg =
        BORLH.E.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
          ~adversary:(adversary_of s) ~seed:s.seed ~link_faults:(plan_of l)
          ?max_deliveries:(budget s.loss) ()
      in
      Abc.Harness.ok (snd (BORLH.run cfg))
end

module Benor_battery = Battery (Benor_subject)

(* ---- 5. MMR ---- *)

module M = Abc.Mmr_consensus

module MH = Abc.Harness.Make (struct
  include M

  let value_of_input = M.value_of_input
end)

module MRL = Abc_net.Reliable_link.Make (M)

module MRLH = Abc.Harness.Make (struct
  include MRL

  let value_of_input = M.value_of_input
end)

module Mmr_subject = struct
  let name = "mmr: termination, agreement, validity (common coin)"

  let count = 50

  let max_n = 10

  let max_loss = 15

  let max_f ~n = (n - 1) / 3

  let check s =
    let inputs = M.inputs ~n:s.n ~coin:(Abc.Coin.common ~seed:9) (binary_values s) in
    match s.loss with
    | None ->
      let cfg =
        MH.E.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
          ~adversary:(adversary_of s) ~seed:s.seed ()
      in
      Abc.Harness.ok (snd (MH.run cfg))
    | Some l ->
      let cfg =
        MRLH.E.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
          ~adversary:(adversary_of s) ~seed:s.seed ~link_faults:(plan_of l)
          ?max_deliveries:(budget s.loss) ()
      in
      Abc.Harness.ok (snd (MRLH.run cfg))
end

module Mmr_battery = Battery (Mmr_subject)

(* ---- 6. Turpin–Coan reduction ---- *)

module TC = Abc.Turpin_coan.Make (Abc.Payloads.Int_payload)
module TcE = Abc_net.Engine.Make (TC)
module TcRL = Abc_net.Reliable_link.Make (TC)
module TcRLE = Abc_net.Engine.Make (TcRL)

module Turpin_subject = struct
  let name = "turpin-coan: joint outcome, unanimity carries"

  let count = 50

  let max_n = 10

  let max_loss = 15

  let max_f ~n = TC.max_faults ~n

  (* Multivalued inputs: two unanimous patterns and one fully split.
     All honest nodes must reach the same outcome; a unanimous input
     must be agreed (never fallback); any agreed value must have been
     proposed. *)
  let check s =
    let values =
      match s.input_pattern with
      | 0 -> Array.make s.n 7
      | 1 -> Array.make s.n 9
      | _ -> Array.init s.n (fun i -> 100 + i)
    in
    let inputs = TC.inputs ~n:s.n ~coin:Abc.Coin.local values in
    let judge outputs stop =
      stop = Abc_net.Engine.All_terminal
      &&
      let honest_outcomes =
        List.filter_map
          (fun i ->
            match outputs.(i) with [ (_, o) ] -> Some o | _ -> None)
          (honest_indices s)
      in
      List.length honest_outcomes = s.n - s.faults
      &&
      match honest_outcomes with
      | [] -> false
      | first :: rest ->
        List.for_all (( = ) first) rest
        && (match first with
           | TC.Agreed w -> Array.exists (( = ) w) values
           | TC.Fallback -> s.input_pattern = 2)
    in
    match s.loss with
    | None ->
      let r =
        TcE.run
          (TcE.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
             ~adversary:(adversary_of s) ~seed:s.seed ())
      in
      judge r.TcE.outputs r.TcE.stop
    | Some l ->
      let r =
        TcRLE.run
          (TcRLE.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
             ~adversary:(adversary_of s) ~seed:s.seed ~link_faults:(plan_of l)
             ?max_deliveries:(budget s.loss) ())
      in
      judge r.TcRLE.outputs r.TcRLE.stop
end

module Turpin_battery = Battery (Turpin_subject)

(* ---- 7. ACS ---- *)

module Acs = Abc.Acs.Make (Abc.Payloads.Int_payload)
module AcsE = Abc_net.Engine.Make (Acs)
module AcsRL = Abc_net.Reliable_link.Make (Acs)
module AcsRLE = Abc_net.Engine.Make (AcsRL)

module Acs_subject = struct
  let name = "acs: identical common subset of proposed values"

  let count = 30

  let max_n = 6

  let max_loss = 8

  let max_f ~n = (n - 1) / 3

  let check s =
    let inputs =
      Acs.inputs ~n:s.n ~coin:Abc.Coin.local (Array.init s.n (fun i -> 100 + i))
    in
    let judge outputs stop =
      stop = Abc_net.Engine.All_terminal
      &&
      let honest_subsets =
        List.filter_map
          (fun i ->
            match outputs.(i) with
            | [ (_, Acs.Accepted subset) ] -> Some subset
            | _ -> None)
          (honest_indices s)
      in
      List.length honest_subsets = s.n - s.faults
      &&
      match honest_subsets with
      | [] -> false
      | first :: rest ->
        List.for_all (( = ) first) rest
        && List.length first >= s.n - s.f
        && List.for_all
             (fun (j, v) -> v = 100 + Node_id.to_int j)
             first
    in
    match s.loss with
    | None ->
      let r =
        AcsE.run
          (AcsE.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
             ~adversary:(adversary_of s) ~seed:s.seed ())
      in
      judge r.AcsE.outputs r.AcsE.stop
    | Some l ->
      let r =
        AcsRLE.run
          (AcsRLE.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
             ~adversary:(adversary_of s) ~seed:s.seed ~link_faults:(plan_of l)
             ?max_deliveries:(budget s.loss) ())
      in
      judge r.AcsRLE.outputs r.AcsRLE.stop
end

module Acs_battery = Battery (Acs_subject)

(* ---- 10. atomic broadcast (batched, pipelined SMR) ---- *)

module Atomic = Abc_smr.Atomic_broadcast
module AtomicE = Abc_net.Engine.Make (Atomic)
module AtomicRL = Abc_net.Reliable_link.Make (Atomic)
module AtomicRLE = Abc_net.Engine.Make (AtomicRL)

module Atomic_subject = struct
  let name = "atomic broadcast: total order, no dup tx, inclusion"

  (* Each scenario runs [epochs] ACS-over-coded-RBC instances, so the
     space stays smaller than the plain ACS subject's. *)
  let count = 20

  let max_n = 5

  let max_loss = 6

  let max_f ~n = (n - 1) / 3

  let batch_size = 3

  let epochs = 4

  (* Mempools hold one epoch less than pipeline capacity: the spare
     epoch absorbs a batch excluded from some subset and re-proposed,
     so the inclusion property below has its "within k epochs" slack. *)
  let mempools s =
    Array.init s.n (fun i ->
        Abc_smr.Workload.txs
          (Abc_smr.Workload.generate ~seed:s.seed ~node:(node i)
             ~count:(batch_size * (epochs - 1)) ~rate:0.2 ~tx_bytes:24))

  let check s =
    let mempools = mempools s in
    let inputs =
      Atomic.inputs ~n:s.n ~window:2 ~batch_size ~epochs
        ~coin_seed:(s.seed + 7919) mempools
    in
    let judge outputs stop =
      stop = Abc_net.Engine.All_terminal
      &&
      let honest_logs =
        List.filter_map
          (fun i -> Atomic.log_of_outputs outputs.(i))
          (honest_indices s)
      in
      List.length honest_logs = s.n - s.faults
      &&
      match honest_logs with
      | [] -> false
      | first :: rest ->
        (* total order agreement *)
        List.for_all (( = ) first) rest
        (* no duplicate transaction in the log *)
        && List.length first
           = List.length (List.sort_uniq String.compare first)
        (* every committed transaction was some node's client input *)
        && (let offered =
              Array.to_list mempools |> List.concat_map Array.to_list
            in
            List.for_all (fun tx -> List.mem tx offered) first)
        (* censorship inclusion: under fault-free fair scheduling on
           clean links, every correct node's transactions commit
           within the run's epochs.  Unfair schedulers (targeted,
           split, eclipse) may legitimately starve a proposer — full
           resistance needs threshold-encrypted batches, which is out
           of scope (see PROTOCOLS.md). *)
        && (s.faults > 0 || s.loss <> None || s.adversary_kind > 2
           || Array.for_all
                (fun mempool ->
                  Array.for_all (fun tx -> List.mem tx first) mempool)
                mempools)
    in
    match s.loss with
    | None ->
      let r =
        AtomicE.run
          (AtomicE.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
             ~adversary:(adversary_of s) ~seed:s.seed ())
      in
      judge r.AtomicE.outputs r.AtomicE.stop
    | Some l ->
      let r =
        AtomicRLE.run
          (AtomicRLE.config ~n:s.n ~f:s.f ~inputs ~faulty:(faulty_of s)
             ~adversary:(adversary_of s) ~seed:s.seed ~link_faults:(plan_of l)
             (* [epochs] overlapping agreements need a deeper delivery
                budget than the single-shot subjects *)
             ~max_deliveries:12_000_000 ())
      in
      judge r.AtomicRLE.outputs r.AtomicRLE.stop
end

module Atomic_battery = Battery (Atomic_subject)

(* ---- engine scale smoke ---- *)

(* One deterministic large-n run through the arena-based engine: the
   batteries above randomize shape but stay at n <= 10, so this is
   the only tier-1 check that the hot path still completes (and
   delivers everywhere) at the n=128 scale E19 benchmarks. *)
let test_scale_bracha_rbc_n128 () =
  let n = 128 and f = 42 in
  let inputs = Rbc.inputs ~n ~sender:(node 0) Value.One in
  let r =
    RbcE.run
      (RbcE.config ~n ~f ~inputs ~adversary:Abc_net.Adversary.uniform ~seed:1
         ())
  in
  Alcotest.(check bool) "all terminal" true
    (r.RbcE.stop = Abc_net.Engine.All_terminal);
  Array.iteri
    (fun i outputs ->
      match outputs with
      | [ (_, Rbc.Delivered v) ] ->
        if v <> Value.One then Alcotest.failf "node %d delivered Zero" i
      | _ -> Alcotest.failf "node %d did not deliver exactly once" i)
    r.RbcE.outputs

let () =
  Alcotest.run "properties"
    [
      ( "broadcast",
        [ Rbc_battery.test; Cb_battery.test; Coded_battery.test; Ir_battery.test ] );
      ( "consensus",
        [ Bracha_battery.test; Benor_battery.test; Mmr_battery.test ] );
      ( "multivalued",
        [ Turpin_battery.test; Acs_battery.test ] );
      ( "smr",
        [ Atomic_battery.test ] );
      ( "scale",
        [
          Alcotest.test_case "bracha rbc n=128 delivers" `Quick
            test_scale_bracha_rbc_n128;
        ] );
    ]
