(* Tests for the Reed-Solomon codec and its Merkle commitment: exact
   reconstruction thresholds, round-trips at random shapes, and
   rejection of tampered fragments. *)

module Rs = Abc.Rs
module Gf = Abc.Gf
module Quorum = Abc.Quorum

let payload_of_seed ~len seed =
  String.init len (fun i -> Char.chr ((seed + (31 * i)) land 0xFF))

(* ---- targeted cases ---- *)

let test_systematic_prefix () =
  (* Fragments 0..k-1 are the data symbols verbatim: decoding from
     exactly those must reproduce the payload trivially. *)
  let payload = payload_of_seed ~len:100 7 in
  let fragments = Array.to_list (Rs.encode ~k:3 ~n:7 payload) in
  let data = List.filteri (fun i _ -> i < 3) fragments in
  Alcotest.(check string) "systematic decode" payload (Rs.decode ~k:3 ~len:100 data)

let test_reconstruction_from_parity_only () =
  (* Any k fragments suffice — including all-parity subsets. *)
  let payload = payload_of_seed ~len:64 3 in
  let fragments = Array.to_list (Rs.encode ~k:3 ~n:7 payload) in
  let parity = List.filteri (fun i _ -> i >= 4) fragments in
  Alcotest.(check string) "parity decode" payload (Rs.decode ~k:3 ~len:64 parity)

let test_exactly_n_minus_2f_fragments () =
  (* The coded-RBC operating point: n = 7, f = 2, k = n - 2f = 3.
     Exactly k fragments (no slack) reconstruct. *)
  let n = 7 and f = 2 in
  let k = Quorum.honest_support ~n ~f in
  Alcotest.(check int) "k is n-2f" 3 k;
  let payload = payload_of_seed ~len:1000 11 in
  let fragments = Array.to_list (Rs.encode ~k ~n payload) in
  (* every k-subset of distinct indices decodes identically *)
  List.iter
    (fun picks ->
      let subset = List.filteri (fun i _ -> List.mem i picks) fragments in
      Alcotest.(check string)
        (Printf.sprintf "subset %s" (String.concat "," (List.map string_of_int picks)))
        payload
        (Rs.decode ~k ~len:1000 subset))
    [ [ 0; 1; 2 ]; [ 4; 5; 6 ]; [ 0; 3; 6 ]; [ 1; 2; 5 ] ]

let test_too_few_fragments_rejected () =
  let payload = payload_of_seed ~len:50 1 in
  let fragments = Array.to_list (Rs.encode ~k:3 ~n:7 payload) in
  let two = List.filteri (fun i _ -> i < 2) fragments in
  Alcotest.check_raises "needs k distinct"
    (Invalid_argument "Rs.decode: not enough distinct fragments") (fun () ->
      ignore (Rs.decode ~k:3 ~len:50 two));
  (* duplicates of one index do not count as distinct *)
  let dup = List.filteri (fun i _ -> i < 2) fragments @ [ List.nth fragments 0 ] in
  Alcotest.check_raises "duplicates collapse"
    (Invalid_argument "Rs.decode: not enough distinct fragments") (fun () ->
      ignore (Rs.decode ~k:3 ~len:50 dup))

let test_empty_and_tiny_payloads () =
  List.iter
    (fun len ->
      let payload = payload_of_seed ~len 5 in
      let fragments = Array.to_list (Rs.encode ~k:2 ~n:4 payload) in
      let subset = List.filteri (fun i _ -> i >= 2) fragments in
      Alcotest.(check string)
        (Printf.sprintf "len=%d" len)
        payload
        (Rs.decode ~k:2 ~len subset))
    [ 0; 1; 2; 3; 4; 5 ]

(* ---- Merkle commitment ---- *)

let test_merkle_accepts_committed_fragments () =
  let payload = payload_of_seed ~len:200 9 in
  let fragments = Rs.encode ~k:3 ~n:7 payload in
  let root, branches = Rs.Merkle.commit ~len:200 fragments in
  Array.iteri
    (fun i fragment ->
      Alcotest.(check bool)
        (Printf.sprintf "leaf %d verifies" i)
        true
        (Rs.Merkle.verify ~root ~len:200 ~index:i branches.(i) fragment))
    fragments

let test_merkle_rejects_tampered_fragment () =
  let payload = payload_of_seed ~len:200 9 in
  let fragments = Rs.encode ~k:3 ~n:7 payload in
  let root, branches = Rs.Merkle.commit ~len:200 fragments in
  let tampered =
    let data = Array.copy fragments.(2).Rs.data in
    data.(0) <- Gf.add data.(0) Gf.one;
    { fragments.(2) with Rs.data = data }
  in
  Alcotest.(check bool) "tampered data rejected" false
    (Rs.Merkle.verify ~root ~len:200 ~index:2 branches.(2) tampered);
  Alcotest.(check bool) "wrong index rejected" false
    (Rs.Merkle.verify ~root ~len:200 ~index:3 branches.(3) fragments.(2));
  Alcotest.(check bool) "wrong length rejected" false
    (Rs.Merkle.verify ~root ~len:199 ~index:2 branches.(2) fragments.(2));
  Alcotest.(check bool) "swapped branch rejected" false
    (Rs.Merkle.verify ~root ~len:200 ~index:2 branches.(3) fragments.(2))

let test_merkle_branch_depth () =
  (* Leaves are padded to a power of two: 7 leaves -> depth 3. *)
  let payload = payload_of_seed ~len:30 2 in
  let fragments = Rs.encode ~k:3 ~n:7 payload in
  let _, branches = Rs.Merkle.commit ~len:30 fragments in
  Array.iter
    (fun branch ->
      Alcotest.(check int) "depth ⌈log2 7⌉" 3 (List.length branch);
      Alcotest.(check int) "branch wire bytes" (3 * Rs.Merkle.hash_bytes)
        (Rs.Merkle.branch_wire_bytes branch))
    branches

(* ---- qcheck round-trips ---- *)

let gen_shape =
  (* (n, f, payload length, seed) with n > 3f and k = n - 2f >= 1 *)
  QCheck.Gen.(
    int_range 4 16 >>= fun n ->
    int_range 0 ((n - 1) / 3) >>= fun f ->
    int_range 0 300 >>= fun len ->
    int_range 0 1000 >>= fun seed -> return (n, f, len, seed))

let prop_roundtrip_random_subset =
  QCheck.Test.make ~name:"decode any k-subset round-trips" ~count:200
    (QCheck.make gen_shape ~print:(fun (n, f, len, seed) ->
         Printf.sprintf "n=%d f=%d len=%d seed=%d" n f len seed))
    (fun (n, f, len, seed) ->
      let k = Quorum.honest_support ~n ~f in
      let payload = payload_of_seed ~len seed in
      let fragments = Array.to_list (Rs.encode ~k ~n payload) in
      (* pick a deterministic pseudo-random k-subset *)
      let arr = Array.of_list fragments in
      let rng = Abc_prng.Stream.root ~seed in
      Abc_prng.Stream.shuffle_in_place rng arr;
      let subset = List.filteri (fun i _ -> i < k) (Array.to_list arr) in
      String.equal payload (Rs.decode ~k ~len subset))

let prop_commit_verify_roundtrip =
  QCheck.Test.make ~name:"commit/verify accepts all leaves" ~count:100
    (QCheck.make gen_shape ~print:(fun (n, f, len, seed) ->
         Printf.sprintf "n=%d f=%d len=%d seed=%d" n f len seed))
    (fun (n, f, len, seed) ->
      let k = Quorum.honest_support ~n ~f in
      let payload = payload_of_seed ~len seed in
      let fragments = Rs.encode ~k ~n payload in
      let root, branches = Rs.Merkle.commit ~len fragments in
      Array.for_all
        (fun fragment ->
          Rs.Merkle.verify ~root ~len ~index:fragment.Rs.index
            branches.(fragment.Rs.index) fragment)
        fragments)

let prop_fragment_sizes =
  (* Each fragment carries ⌈symbols/k⌉ field elements: the payload
     splits k ways (the O(|m|/k) term of the bandwidth bound). *)
  QCheck.Test.make ~name:"fragment size is ceil(symbols / k)" ~count:100
    (QCheck.make gen_shape ~print:(fun (n, f, len, seed) ->
         Printf.sprintf "n=%d f=%d len=%d seed=%d" n f len seed))
    (fun (n, f, len, seed) ->
      let k = Quorum.honest_support ~n ~f in
      let payload = payload_of_seed ~len seed in
      let fragments = Rs.encode ~k ~n payload in
      let symbols = (len + Rs.symbol_bytes - 1) / Rs.symbol_bytes in
      let blocks = (symbols + k - 1) / k in
      Array.for_all (fun fr -> Array.length fr.Rs.data = blocks) fragments)

let () =
  Alcotest.run "rs"
    [
      ( "codec",
        [
          Alcotest.test_case "systematic prefix" `Quick test_systematic_prefix;
          Alcotest.test_case "parity-only reconstruction" `Quick
            test_reconstruction_from_parity_only;
          Alcotest.test_case "exactly n-2f fragments" `Quick
            test_exactly_n_minus_2f_fragments;
          Alcotest.test_case "too few fragments rejected" `Quick
            test_too_few_fragments_rejected;
          Alcotest.test_case "tiny payloads" `Quick test_empty_and_tiny_payloads;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "committed fragments verify" `Quick
            test_merkle_accepts_committed_fragments;
          Alcotest.test_case "tampered fragments rejected" `Quick
            test_merkle_rejects_tampered_fragment;
          Alcotest.test_case "branch depth" `Quick test_merkle_branch_depth;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip_random_subset;
          QCheck_alcotest.to_alcotest prop_commit_verify_roundtrip;
          QCheck_alcotest.to_alcotest prop_fragment_sizes;
        ] );
    ]
