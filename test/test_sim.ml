(* Unit and property tests for the abc_sim simulation kernel. *)

module Heap = Abc_sim.Heap
module Vec = Abc_sim.Vec
module Clock = Abc_sim.Clock
module Trace = Abc_sim.Trace
module Summary = Abc_sim.Summary
module Metrics = Abc_sim.Metrics
module Table = Abc_sim.Table

(* Heap *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h ~priority:p p) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Heap.pop h with
    | Some (p, _) -> drain (p :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 9 ] (drain [])

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iteri (fun i name -> Heap.push h ~priority:(i mod 2) name)
    [ "a"; "b"; "c"; "d"; "e" ];
  (* priority 0: a, c, e in insertion order; priority 1: b, d *)
  let pops = List.init 5 (fun _ -> match Heap.pop h with Some (_, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "stable ties" [ "a"; "c"; "e"; "b"; "d" ] pops

let test_heap_peek () =
  let h = Heap.create () in
  Alcotest.(check bool) "peek empty" true (Heap.peek h = None);
  Heap.push h ~priority:3 "x";
  Heap.push h ~priority:1 "y";
  (match Heap.peek h with
  | Some (1, "y") -> ()
  | _ -> Alcotest.fail "peek should be (1, y)");
  Alcotest.(check int) "peek does not remove" 2 (Heap.length h)

let test_heap_growth () =
  let h = Heap.create () in
  for i = 1000 downto 1 do
    Heap.push h ~priority:i i
  done;
  Alcotest.(check int) "length" 1000 (Heap.length h);
  let rec check_sorted prev =
    match Heap.pop h with
    | None -> ()
    | Some (p, _) ->
      Alcotest.(check bool) "non-decreasing" true (p >= prev);
      check_sorted p
  in
  check_sorted min_int

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h ~priority:1 1;
  Heap.clear h;
  Alcotest.(check bool) "empty after clear" true (Heap.is_empty h)

let test_heap_peek_priority () =
  let h = Heap.create () in
  Alcotest.(check int) "empty gives default" max_int
    (Heap.peek_priority h ~default:max_int);
  Heap.push h ~priority:7 "a";
  Heap.push h ~priority:3 "b";
  Alcotest.(check int) "min priority" 3 (Heap.peek_priority h ~default:0);
  ignore (Heap.pop h);
  Alcotest.(check int) "after pop" 7 (Heap.peek_priority h ~default:0);
  ignore (Heap.pop h);
  Alcotest.(check int) "drained gives default" 42
    (Heap.peek_priority h ~default:42)

(* The struct-of-arrays layout must keep each payload glued to its
   priority through sifts and growth: pop every entry and check the
   payload is the one pushed with that priority. *)
let test_heap_payload_pairing () =
  let h = Heap.create () in
  for i = 0 to 999 do
    let p = (i * 7919) mod 1000 in
    Heap.push h ~priority:p (p * 2)
  done;
  let rec drain last =
    match Heap.pop h with
    | None -> ()
    | Some (p, x) ->
      Alcotest.(check int) "payload tracks priority" (p * 2) x;
      Alcotest.(check bool) "nondecreasing" true (p >= last);
      drain p
  in
  drain min_int

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in priority order" ~count:200
    QCheck.(list small_int)
    (fun priorities ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h ~priority:p p) priorities;
      let rec drain acc =
        match Heap.pop h with Some (p, _) -> drain (p :: acc) | None -> List.rev acc
      in
      drain [] = List.sort Int.compare priorities)

(* Vec *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 42" 42 (Vec.get v 42)

let test_vec_swap_remove () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 10; 20; 30; 40 ];
  let removed = Vec.swap_remove v 1 in
  Alcotest.(check int) "removed" 20 removed;
  Alcotest.(check int) "length" 3 (Vec.length v);
  let remaining = List.sort Int.compare (Vec.to_list v) in
  Alcotest.(check (list int)) "rest intact" [ 10; 30; 40 ] remaining

let test_vec_swap_remove_last () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 1; 2 ];
  let removed = Vec.swap_remove v 1 in
  Alcotest.(check int) "removed last" 2 removed;
  Alcotest.(check (list int)) "rest" [ 1 ] (Vec.to_list v)

let test_vec_out_of_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Vec.get: index out of bounds") (fun () ->
      ignore (Vec.get v 1))

let prop_vec_multiset_preserved =
  QCheck.Test.make ~name:"swap_remove preserves the multiset" ~count:200
    QCheck.(pair (list small_int) small_int)
    (fun (xs, k) ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      let removed = ref [] in
      let steps = min k (List.length xs) in
      for _ = 1 to steps do
        let i = Vec.length v / 2 in
        removed := Vec.swap_remove v i :: !removed
      done;
      List.sort Int.compare (!removed @ Vec.to_list v) = List.sort Int.compare xs)

(* Clock *)

let test_clock () =
  let c = Clock.create () in
  Alcotest.(check int) "starts at 0" 0 (Clock.now c);
  Alcotest.(check int) "tick" 1 (Clock.tick c);
  Clock.advance_to c 10;
  Alcotest.(check int) "advanced" 10 (Clock.now c);
  Alcotest.check_raises "no going back"
    (Invalid_argument "Clock.advance_to: time 5 is before now 10") (fun () ->
      Clock.advance_to c 5)

(* Trace *)

let note_detail (e : Trace.entry) =
  match e.Trace.event.Abc_sim.Event.kind with
  | Abc_sim.Event.Note { detail; _ } -> detail
  | _ -> Alcotest.fail "expected a note entry"

let test_trace_basic () =
  let t = Trace.create ~capacity:10 () in
  Trace.note t ~time:1 ~node:0 ~tag:"a" "first";
  Trace.note t ~time:2 ~node:1 ~tag:"b" "second";
  Alcotest.(check int) "length" 2 (Trace.length t);
  let entries = Trace.to_list t in
  Alcotest.(check (list string)) "order"
    [ "first"; "second" ]
    (List.map note_detail entries)

let test_trace_eviction () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.note t ~time:i ~node:0 ~tag:"x" (string_of_int i)
  done;
  Alcotest.(check int) "bounded" 3 (Trace.length t);
  Alcotest.(check int) "dropped" 2 (Trace.dropped t);
  Alcotest.(check int) "recorded" 5 (Trace.recorded t);
  Alcotest.(check (list string)) "keeps newest"
    [ "3"; "4"; "5" ]
    (List.map note_detail (Trace.to_list t))

let test_trace_find_kind () =
  let t = Trace.create () in
  let deliver src = Abc_sim.Event.Deliver { src; label = "m"; detail = ""; bytes = 0 } in
  Trace.record t ~time:1 ~node:0 (Abc_sim.Event.make (deliver 1));
  Trace.record t ~time:2 ~node:0
    (Abc_sim.Event.make (Abc_sim.Event.Output { label = "o1" }));
  Trace.record t ~time:3 ~node:0 (Abc_sim.Event.make (deliver 2));
  Alcotest.(check int) "two delivers" 2
    (List.length (Trace.find_kind t ~label:"deliver"))

(* Summary *)

let test_summary_empty () =
  Alcotest.(check bool) "empty is None" true (Summary.of_list [] = None)

let summary_exn samples =
  match Summary.of_list samples with
  | Some s -> s
  | None -> Alcotest.fail "expected summary"

let test_summary_stats () =
  let s = summary_exn [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check (float 1e-9)) "mean" 3. (Summary.mean s);
  Alcotest.(check (float 1e-9)) "median" 3. (Summary.median s);
  Alcotest.(check (float 1e-9)) "min" 1. (Summary.min_value s);
  Alcotest.(check (float 1e-9)) "max" 5. (Summary.max_value s);
  Alcotest.(check (float 1e-9)) "total" 15. (Summary.total s);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) (Summary.stddev s);
  Alcotest.(check int) "count" 5 (Summary.count s)

let test_summary_percentile_interpolation () =
  let s = summary_exn [ 10.; 20. ] in
  Alcotest.(check (float 1e-9)) "p50 interpolates" 15. (Summary.percentile s 50.);
  Alcotest.(check (float 1e-9)) "p0" 10. (Summary.percentile s 0.);
  Alcotest.(check (float 1e-9)) "p100" 20. (Summary.percentile s 100.)

let test_summary_single () =
  let s = summary_exn [ 7. ] in
  Alcotest.(check (float 1e-9)) "p95 of single" 7. (Summary.percentile s 95.);
  Alcotest.(check (float 1e-9)) "stddev single" 0. (Summary.stddev s)

let test_summary_mean_ci () =
  let s = summary_exn [ 1.; 2.; 3.; 4.; 5. ] in
  let lo, hi = Summary.mean_ci95 s in
  Alcotest.(check bool) "interval brackets the mean" true
    (lo <= Summary.mean s && Summary.mean s <= hi);
  Alcotest.(check (float 1e-6)) "symmetric" (Summary.mean s -. lo) (hi -. Summary.mean s);
  let single = summary_exn [ 7. ] in
  let lo, hi = Summary.mean_ci95 single in
  Alcotest.(check (float 1e-9)) "degenerate lo" 7. lo;
  Alcotest.(check (float 1e-9)) "degenerate hi" 7. hi

let prop_summary_bounds =
  QCheck.Test.make ~name:"percentiles stay within [min,max]" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.)) (float_bound_inclusive 100.))
    (fun (samples, p) ->
      let s = summary_exn samples in
      let v = Summary.percentile s p in
      v >= Summary.min_value s -. 1e-9 && v <= Summary.max_value s +. 1e-9)

(* Histogram *)

module Histogram = Abc_sim.Histogram

let test_histogram_counts () =
  let h = Histogram.create () in
  Histogram.add_list h [ 1; 2; 2; 5 ];
  Alcotest.(check int) "total" 4 (Histogram.total h);
  Alcotest.(check int) "count 2" 2 (Histogram.count h 2);
  Alcotest.(check int) "count missing" 0 (Histogram.count h 3)

let test_histogram_buckets_fill_gaps () =
  let h = Histogram.create () in
  Histogram.add_list h [ 1; 4 ];
  Alcotest.(check (list (pair int int))) "dense buckets"
    [ (1, 1); (2, 0); (3, 0); (4, 1) ]
    (Histogram.buckets h)

let test_histogram_render () =
  let h = Histogram.create () in
  Alcotest.(check string) "empty" "(no data)\n" (Histogram.render h);
  Histogram.add_list h [ 1; 1; 2 ];
  let out = Histogram.render ~width:4 h in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "two buckets + trailing" 3 (List.length lines);
  Alcotest.(check bool) "peak bar full width" true
    (String.length (List.nth lines 0) > String.length (List.nth lines 1))

let prop_histogram_total =
  QCheck.Test.make ~name:"histogram total equals observations" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Histogram.create () in
      Histogram.add_list h xs;
      Histogram.total h = List.length xs
      && List.fold_left (fun acc (_, c) -> acc + c) 0 (Histogram.buckets h)
         = List.length xs)

(* Metrics *)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr m "a";
  Metrics.add m "b" 5;
  Alcotest.(check int) "a" 2 (Metrics.counter m "a");
  Alcotest.(check int) "b" 5 (Metrics.counter m "b");
  Alcotest.(check int) "missing" 0 (Metrics.counter m "zzz");
  Alcotest.(check (list (pair string int))) "sorted counters"
    [ ("a", 2); ("b", 5) ]
    (Metrics.counters m)

let test_metrics_series () =
  let m = Metrics.create () in
  Metrics.observe m "lat" 1.;
  Metrics.observe m "lat" 3.;
  Alcotest.(check (list (float 1e-9))) "series order" [ 1.; 3. ] (Metrics.series m "lat");
  match Metrics.summarize m "lat" with
  | Some s -> Alcotest.(check (float 1e-9)) "mean" 2. (Summary.mean s)
  | None -> Alcotest.fail "expected summary"

(* Table *)

let test_table_render () =
  let t = Table.create ~title:"T" ~columns:[ "col"; "n" ] () in
  Table.add_row t [ "abc"; "1" ];
  Table.add_row t [ "d"; "22" ];
  let out = Table.render t in
  Alcotest.(check bool) "contains title" true
    (String.length out > 0 && String.sub out 0 1 = "T");
  Alcotest.(check bool) "aligned rows present" true
    (List.exists (fun line -> line = "abc  1 ") (String.split_on_char '\n' out))

let test_table_arity_check () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "b" ] () in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: 1 cells for 2 columns in table \"T\"")
    (fun () -> Table.add_row t [ "only" ])

let test_table_csv () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "b" ] () in
  Table.add_row t [ "plain"; "with,comma" ];
  Table.add_row t [ "has\"quote"; "fine" ];
  Alcotest.(check string) "csv escaping"
    "a,b\nplain,\"with,comma\"\n\"has\"\"quote\",fine\n" (Table.csv t)

let test_table_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Table.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "ratio" "2.5x" (Table.cell_ratio 2.5);
  Alcotest.(check string) "percent" "97.0%" (Table.cell_percent 0.97)

let () =
  Alcotest.run "abc_sim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "peek" `Quick test_heap_peek;
          Alcotest.test_case "growth" `Quick test_heap_growth;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "peek_priority" `Quick test_heap_peek_priority;
          Alcotest.test_case "payload pairing" `Quick test_heap_payload_pairing;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "swap_remove" `Quick test_vec_swap_remove;
          Alcotest.test_case "swap_remove last" `Quick test_vec_swap_remove_last;
          Alcotest.test_case "out of bounds" `Quick test_vec_out_of_bounds;
          QCheck_alcotest.to_alcotest prop_vec_multiset_preserved;
        ] );
      ("clock", [ Alcotest.test_case "basics" `Quick test_clock ]);
      ( "trace",
        [
          Alcotest.test_case "basic" `Quick test_trace_basic;
          Alcotest.test_case "eviction" `Quick test_trace_eviction;
          Alcotest.test_case "find_all" `Quick test_trace_find_kind;
        ] );
      ( "summary",
        [
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "stats" `Quick test_summary_stats;
          Alcotest.test_case "percentile interpolation" `Quick
            test_summary_percentile_interpolation;
          Alcotest.test_case "single sample" `Quick test_summary_single;
          Alcotest.test_case "mean confidence interval" `Quick test_summary_mean_ci;
          QCheck_alcotest.to_alcotest prop_summary_bounds;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick test_histogram_counts;
          Alcotest.test_case "buckets fill gaps" `Quick test_histogram_buckets_fill_gaps;
          Alcotest.test_case "render" `Quick test_histogram_render;
          QCheck_alcotest.to_alcotest prop_histogram_total;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "series" `Quick test_metrics_series;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity check" `Quick test_table_arity_check;
          Alcotest.test_case "cells" `Quick test_table_cells;
          Alcotest.test_case "csv" `Quick test_table_csv;
        ] );
    ]
