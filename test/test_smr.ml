(* Tests for the replicated log (state machine replication). *)

module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary
module Log = Abc_smr.Replicated_log
module E = Abc_net.Engine.Make (Log)

let node = Node_id.of_int

let command i k = Printf.sprintf "cmd-%d.%d" i k

let run ?faulty ?(adversary = Adversary.uniform) ?(coin = Abc.Coin.local) ~n ~f
    ~slots ~seed () =
  let inputs = Log.inputs ~n ~slots ~coin command in
  E.run (E.config ?faulty ~n ~f ~inputs ~seed ~adversary ())

let check_terminal result =
  Alcotest.(check string) "all terminal" "all-terminal"
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.E.stop)

let logs result honest =
  List.map
    (fun id ->
      match Log.log_of_outputs result.E.outputs.(Node_id.to_int id) with
      | Some log -> log
      | None -> Alcotest.fail (Fmt.str "replica %a has no complete log" Node_id.pp id))
    honest

let test_logs_identical () =
  let result = run ~n:4 ~f:1 ~slots:3 ~seed:1 () in
  check_terminal result;
  match logs result (Node_id.all ~n:4) with
  | first :: rest ->
    List.iter
      (fun log -> Alcotest.(check (list string)) "identical log" first log)
      rest;
    (* 4 replicas x 3 slots, nobody faulty: 12 commands expected. *)
    Alcotest.(check int) "log length" 12 (List.length first)
  | [] -> Alcotest.fail "no logs"

let test_commits_in_slot_order () =
  let result = run ~n:4 ~f:1 ~slots:3 ~seed:2 () in
  check_terminal result;
  Array.iter
    (fun outputs ->
      let slots =
        List.filter_map
          (fun (_, o) ->
            match o with
            | Log.Committed { slot; _ } -> Some slot
            | Log.Log_complete _ -> None)
          outputs
      in
      Alcotest.(check (list int)) "slots in order" [ 0; 1; 2 ] slots)
    result.E.outputs

let test_committed_contents_sorted_by_node () =
  let result = run ~n:4 ~f:1 ~slots:1 ~seed:3 () in
  check_terminal result;
  Array.iter
    (fun outputs ->
      List.iter
        (fun (_, o) ->
          match o with
          | Log.Committed { commands; _ } ->
            let ids = List.map (fun (id, _) -> Node_id.to_int id) commands in
            Alcotest.(check (list int)) "sorted ids" (List.sort Int.compare ids) ids
          | Log.Log_complete _ -> ())
        outputs)
    result.E.outputs

let test_faulty_replica_excluded_consistently () =
  let faulty = [ (node 1, Behaviour.Silent) ] in
  let result = run ~faulty ~n:4 ~f:1 ~slots:2 ~seed:4 () in
  check_terminal result;
  let honest = [ node 0; node 2; node 3 ] in
  match logs result honest with
  | first :: rest ->
    List.iter (fun log -> Alcotest.(check (list string)) "identical" first log) rest;
    Alcotest.(check bool) "no commands from silent replica" true
      (List.for_all (fun c -> not (String.length c > 5 && String.sub c 0 6 = "cmd-1.")) first)
  | [] -> Alcotest.fail "no logs"

let test_lying_replica_logs_still_agree () =
  (* A replica that flips bits inside slot messages: agreement on the
     log must survive (the inner consensus tolerates it). *)
  let result = run ~n:4 ~f:1 ~slots:2 ~seed:5 () in
  check_terminal result;
  match logs result (Node_id.all ~n:4) with
  | first :: rest ->
    List.iter (fun log -> Alcotest.(check (list string)) "identical" first log) rest
  | [] -> Alcotest.fail "no logs"

let test_single_slot () =
  let result = run ~n:4 ~f:1 ~slots:1 ~seed:6 () in
  check_terminal result;
  match logs result (Node_id.all ~n:4) with
  | first :: _ -> Alcotest.(check int) "one slot of 4" 4 (List.length first)
  | [] -> Alcotest.fail "no logs"

let test_larger_cluster () =
  let result = run ~n:7 ~f:2 ~slots:2 ~seed:7 () in
  check_terminal result;
  match logs result (Node_id.all ~n:7) with
  | first :: rest ->
    List.iter (fun log -> Alcotest.(check (list string)) "identical" first log) rest
  | [] -> Alcotest.fail "no logs"

(* ---- KV state machine ---- *)

module Kv = Abc_smr.Kv_store

let test_kv_parse_render () =
  let roundtrip line =
    Alcotest.(check string) line line (Kv.render (Kv.parse line))
  in
  roundtrip "PUT k v";
  roundtrip "GET k";
  roundtrip "DEL k";
  roundtrip "CAS k old new";
  roundtrip "<noop>";
  (match Kv.parse "garbage in garbage out drop table" with
  | Kv.Invalid _ -> ()
  | _ -> Alcotest.fail "expected Invalid");
  match Kv.parse "  PUT   k   v " with
  | Kv.Put { key = "k"; value = "v" } -> ()
  | _ -> Alcotest.fail "whitespace-tolerant parse"

let test_kv_apply_semantics () =
  let store = Kv.empty in
  let store, r = Kv.apply store (Kv.parse "GET a") in
  Alcotest.(check bool) "missing" true (r = Kv.Missing);
  let store, _ = Kv.apply store (Kv.parse "PUT a 1") in
  let store, r = Kv.apply store (Kv.parse "GET a") in
  Alcotest.(check bool) "found" true (r = Kv.Found "1");
  let store, r = Kv.apply store (Kv.parse "CAS a 1 2") in
  Alcotest.(check bool) "cas ok" true (r = Kv.Found "1");
  Alcotest.(check (option string)) "cas applied" (Some "2") (Kv.find store "a");
  let store, r = Kv.apply store (Kv.parse "CAS a 1 3") in
  Alcotest.(check bool) "cas fail" true (r = Kv.Cas_failed (Some "2"));
  let store, r = Kv.apply store (Kv.parse "DEL a") in
  Alcotest.(check bool) "del" true (r = Kv.Unit);
  let _, r = Kv.apply store (Kv.parse "DEL a") in
  Alcotest.(check bool) "del missing" true (r = Kv.Missing)

let test_kv_invalid_is_noop () =
  let store, _ = Kv.apply Kv.empty (Kv.parse "PUT a 1") in
  let store', r = Kv.apply store (Kv.parse ":-) byzantine garbage") in
  Alcotest.(check bool) "no result surprise" true (r = Kv.Unit);
  Alcotest.(check string) "state unchanged" (Kv.digest store) (Kv.digest store')

let test_kv_digest_discriminates () =
  let s1, _ = Kv.apply_log Kv.empty [ "PUT a 1"; "PUT b 2" ] in
  let s2, _ = Kv.apply_log Kv.empty [ "PUT b 2"; "PUT a 1" ] in
  let s3, _ = Kv.apply_log Kv.empty [ "PUT a 1"; "PUT b 3" ] in
  Alcotest.(check string) "order-insensitive state" (Kv.digest s1) (Kv.digest s2);
  Alcotest.(check bool) "different state, different digest" false
    (String.equal (Kv.digest s1) (Kv.digest s3))

let test_kv_replicas_converge () =
  (* End to end: run the replicated log with realistic commands and a
     Byzantine replica, apply each replica's log to a KV store, and
     compare digests. *)
  let kv_command i k =
    match (i + k) mod 3 with
    | 0 -> Printf.sprintf "PUT key%d v%d_%d" (k mod 2) i k
    | 1 -> Printf.sprintf "GET key%d" (k mod 2)
    | _ -> Printf.sprintf "DEL key%d" (k mod 2)
  in
  let n = 4 and f = 1 and slots = 3 in
  let inputs = Log.inputs ~n ~slots ~coin:Abc.Coin.local kv_command in
  let faulty = [ (node 3, Behaviour.Mutate (fun _rng m -> m)) ] in
  let result =
    E.run (E.config ~n ~f ~inputs ~faulty ~adversary:Adversary.uniform ~seed:9 ())
  in
  check_terminal result;
  let digests =
    List.filter_map
      (fun i ->
        Option.map
          (fun log -> Kv.digest (fst (Kv.apply_log Kv.empty log)))
          (Log.log_of_outputs result.E.outputs.(i)))
      [ 0; 1; 2; 3 ]
  in
  match digests with
  | first :: rest ->
    Alcotest.(check int) "all replicas completed" 4 (List.length digests);
    List.iter (fun d -> Alcotest.(check string) "converged state" first d) rest
  | [] -> Alcotest.fail "no digests"

(* ---- atomic broadcast (batched, pipelined) ---- *)

module Atomic = Abc_smr.Atomic_broadcast
module Workload = Abc_smr.Workload
module EA = Abc_net.Engine.Make (Atomic)

let mempools ~n ~count ~seed =
  Array.init n (fun i ->
      Workload.txs
        (Workload.generate ~seed ~node:(node i) ~count ~rate:0.05 ~tx_bytes:32))

let run_atomic ?faulty ?(adversary = Adversary.uniform) ?(window = 2) ~n ~f
    ~epochs ~batch_size ~seed () =
  let mempools = mempools ~n ~count:(batch_size * epochs) ~seed in
  let inputs =
    Atomic.inputs ~n ~window ~batch_size ~epochs ~coin_seed:((seed * 1000) + 17)
      mempools
  in
  EA.run (EA.config ?faulty ~n ~f ~inputs ~seed ~adversary ())

let check_atomic_terminal result =
  Alcotest.(check string) "all terminal" "all-terminal"
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.EA.stop)

let atomic_logs result honest =
  List.map
    (fun id ->
      match Atomic.log_of_outputs result.EA.outputs.(Node_id.to_int id) with
      | Some log -> log
      | None ->
        Alcotest.fail (Fmt.str "replica %a has no complete log" Node_id.pp id))
    honest

let test_atomic_total_order () =
  let result = run_atomic ~n:4 ~f:1 ~epochs:3 ~batch_size:4 ~seed:21 () in
  check_atomic_terminal result;
  match atomic_logs result (Node_id.all ~n:4) with
  | first :: rest ->
    List.iter
      (fun log -> Alcotest.(check (list string)) "identical log" first log)
      rest;
    Alcotest.(check bool) "log non-trivial" true (List.length first > 0)
  | [] -> Alcotest.fail "no logs"

let test_atomic_no_duplicates () =
  let result = run_atomic ~n:4 ~f:1 ~epochs:3 ~batch_size:4 ~seed:22 () in
  check_atomic_terminal result;
  Array.iter
    (fun outputs ->
      match Atomic.log_of_outputs outputs with
      | None -> Alcotest.fail "no complete log"
      | Some log ->
        let sorted = List.sort_uniq String.compare log in
        Alcotest.(check int) "no duplicate tx" (List.length log)
          (List.length sorted))
    result.EA.outputs

let test_atomic_commits_in_epoch_order () =
  let result = run_atomic ~n:4 ~f:1 ~epochs:3 ~batch_size:2 ~seed:23 () in
  check_atomic_terminal result;
  Array.iter
    (fun outputs ->
      let epochs =
        List.filter_map
          (fun (_, o) ->
            match o with
            | Atomic.Epoch_committed { epoch; _ } -> Some epoch
            | Atomic.Gc_stats _ | Atomic.Log_complete _ -> None)
          outputs
      in
      Alcotest.(check (list int)) "epochs in order" [ 0; 1; 2 ] epochs)
    result.EA.outputs

let test_atomic_crash_faulty_tolerated () =
  let faulty = [ (node 2, Behaviour.Silent) ] in
  let result = run_atomic ~faulty ~n:4 ~f:1 ~epochs:2 ~batch_size:4 ~seed:24 () in
  check_atomic_terminal result;
  let honest = [ node 0; node 1; node 3 ] in
  match atomic_logs result honest with
  | first :: rest ->
    List.iter
      (fun log -> Alcotest.(check (list string)) "identical" first log)
      rest
  | [] -> Alcotest.fail "no logs"

let test_atomic_deep_pipeline () =
  let result =
    run_atomic ~window:3 ~n:4 ~f:1 ~epochs:5 ~batch_size:2 ~seed:25 ()
  in
  check_atomic_terminal result;
  match atomic_logs result (Node_id.all ~n:4) with
  | first :: rest ->
    List.iter
      (fun log -> Alcotest.(check (list string)) "identical" first log)
      rest
  | [] -> Alcotest.fail "no logs"

(* ---- crash-recovery: checkpoints, GC, state transfer ---- *)

let atomic_recovery = { EA.snapshot = Atomic.snapshot; restore = Atomic.restore }

let run_recovery ?(adversary = Adversary.uniform) ?(window = 2)
    ?(checkpoint_interval = 2) ~crash ~n ~f ~epochs ~batch_size ~seed () =
  let mempools = mempools ~n ~count:(batch_size * epochs) ~seed in
  let inputs =
    Atomic.inputs ~n ~window ~checkpoint_interval ~batch_size ~epochs
      ~coin_seed:((seed * 1000) + 17)
      mempools
  in
  let faulty =
    List.map
      (fun (i, schedule) -> (node i, Behaviour.Crash_recover schedule))
      crash
  in
  EA.run (EA.config ~faulty ~n ~f ~inputs ~seed ~adversary ~recovery:atomic_recovery ())

let check_identical_complete_logs result ~n =
  match atomic_logs result (Node_id.all ~n) with
  | first :: rest ->
    List.iter
      (fun log -> Alcotest.(check (list string)) "identical log" first log)
      rest;
    Alcotest.(check bool) "log non-trivial" true (List.length first > 0);
    let sorted = List.sort_uniq String.compare first in
    Alcotest.(check int) "no duplicate tx" (List.length first)
      (List.length sorted)
  | [] -> Alcotest.fail "no logs"

let test_atomic_recovery_total_order () =
  (* Node 2 crashes mid-run and rejoins much later: it must catch up
     via state transfer (epoch traffic it slept through is never
     retransmitted) and land on the same log as everyone else. *)
  let result =
    run_recovery ~crash:[ (2, [ (800, 9000) ]) ] ~n:4 ~f:1 ~epochs:6
      ~batch_size:3 ~seed:31 ()
  in
  check_atomic_terminal result;
  check_identical_complete_logs result ~n:4;
  (match Atomic.stats_of_outputs result.EA.outputs.(2) with
  | Some (_, _, transfers) ->
    Alcotest.(check bool) "recovered via state transfer" true (transfers >= 1)
  | None -> Alcotest.fail "no gc stats on the recovered node");
  let c = Abc_sim.Metrics.counter result.EA.metrics in
  Alcotest.(check int) "one crash" 1 (c "node.crashed");
  Alcotest.(check int) "one recovery" 1 (c "node.recovered")

let test_atomic_gc_bounds_live_instances () =
  (* GC on (checkpoint every 2 epochs) vs off (interval past the run's
     end, so no boundary is ever crossed): with GC the high-water mark
     of live epoch agreements stays bounded by the pipeline window
     plus checkpoint lag; without it every epoch's instance is
     retained to the end. *)
  let epochs = 10 in
  let stats interval =
    let result =
      run_recovery ~checkpoint_interval:interval ~crash:[] ~n:4 ~f:1 ~epochs
        ~batch_size:2 ~seed:32 ()
    in
    check_atomic_terminal result;
    match Atomic.stats_of_outputs result.EA.outputs.(0) with
    | Some s -> s
    | None -> Alcotest.fail "no gc stats"
  in
  let live_on, checkpoints_on, _ = stats 2 in
  let live_off, _, _ = stats (epochs + 1) in
  Alcotest.(check bool) "checkpoints went stable" true (checkpoints_on >= 3);
  Alcotest.(check int) "no GC retains every epoch" epochs live_off;
  Alcotest.(check bool)
    (Fmt.str "GC bounds live instances (%d < %d)" live_on live_off)
    true
    (live_on < live_off);
  (* window 2 + interval 2 of checkpoint lag, plus one epoch of slack
     for traffic-driven lazy opens. *)
  Alcotest.(check bool) "bounded by window + interval + 1" true (live_on <= 5)

let test_atomic_checkpoint_at_window_boundary () =
  (* The checkpoint interval equals the pipeline window: every
     stability decision lands exactly where the window slides, the
     case where GC pruning and open_window race for the same epochs. *)
  let result =
    run_recovery ~window:2 ~checkpoint_interval:2
      ~crash:[ (1, [ (1200, 7000) ]) ]
      ~n:4 ~f:1 ~epochs:6 ~batch_size:2 ~seed:33 ()
  in
  check_atomic_terminal result;
  check_identical_complete_logs result ~n:4

let test_atomic_recovery_mid_dispersal () =
  (* Crash node 2 almost immediately — mid-dispersal of its own epoch-0
     batch.  Its RBC echoes for the batch may still complete at other
     nodes, and the restored incarnation requeues the same
     transactions: commit-time dedup must keep each tx single. *)
  let result =
    run_recovery ~crash:[ (2, [ (40, 5000) ]) ] ~n:4 ~f:1 ~epochs:5
      ~batch_size:3 ~seed:34 ()
  in
  check_atomic_terminal result;
  check_identical_complete_logs result ~n:4

let test_atomic_double_crash_before_stable () =
  (* Two back-to-back crashes, both before any checkpoint can go
     stable (the first epochs commit around tick ~2000 at this size):
     the node cold-starts twice from an empty durable store and must
     still converge. *)
  let result =
    run_recovery ~crash:[ (3, [ (30, 200); (260, 900) ]) ] ~n:4 ~f:1 ~epochs:5
      ~batch_size:2 ~seed:35 ()
  in
  check_atomic_terminal result;
  check_identical_complete_logs result ~n:4;
  let c = Abc_sim.Metrics.counter result.EA.metrics in
  Alcotest.(check int) "two crashes" 2 (c "node.crashed");
  Alcotest.(check int) "two recoveries" 2 (c "node.recovered")

let test_atomic_recovery_deterministic () =
  let go () =
    run_recovery ~crash:[ (0, [ (500, 4000) ]) ] ~n:4 ~f:1 ~epochs:4
      ~batch_size:2 ~seed:36 ()
  in
  let r1 = go () and r2 = go () in
  Alcotest.(check int) "same deliveries" r1.EA.deliveries r2.EA.deliveries;
  Alcotest.(check int) "same duration" r1.EA.duration r2.EA.duration;
  Alcotest.(check (list string)) "same log"
    (List.concat (atomic_logs r1 [ node 0 ]))
    (List.concat (atomic_logs r2 [ node 0 ]))

let test_batch_codec_roundtrip () =
  let roundtrip txs =
    Alcotest.(check (option (list string)))
      "roundtrip" (Some txs)
      (Atomic.decode_batch (Atomic.encode_batch txs))
  in
  roundtrip [];
  roundtrip [ "n0-t000000:abc" ];
  roundtrip [ "a"; "b:with:colons"; ""; String.make 300 'x' ];
  Alcotest.(check string) "empty batch non-empty wire" "0" (Atomic.encode_batch []);
  List.iter
    (fun junk ->
      Alcotest.(check (option (list string))) junk None (Atomic.decode_batch junk))
    [ ""; "x"; "2:1:a"; "1:5:ab"; "1:1:ab"; "-1"; "1:9999999999:a" ]

let test_workload_deterministic () =
  let gen () =
    Workload.generate ~seed:42 ~node:(node 1) ~count:50 ~rate:0.1 ~tx_bytes:48
  in
  let a = gen () and b = gen () in
  Alcotest.(check (array string)) "same txs" (Workload.txs a) (Workload.txs b);
  let monotone = ref true and prev = ref 0.0 in
  for i = 0 to Workload.count a - 1 do
    if Workload.arrival a i < !prev then monotone := false;
    prev := Workload.arrival a i
  done;
  Alcotest.(check bool) "arrivals monotone" true !monotone;
  Array.iter
    (fun tx -> Alcotest.(check int) "padded to tx_bytes" 48 (String.length tx))
    (Workload.txs a);
  let other =
    Workload.generate ~seed:42 ~node:(node 2) ~count:50 ~rate:0.1 ~tx_bytes:48
  in
  let ids w =
    Array.to_list (Array.map Workload.tx_id (Workload.txs w))
  in
  List.iter
    (fun id -> Alcotest.(check bool) "ids disjoint across nodes" false
        (List.mem id (ids other)))
    (ids a)

(* ---- client sessions (exactly-once) ---- *)

module Session = Abc_smr.Session

let test_session_tag_roundtrip () =
  let r = { Session.client = "alice"; request_id = 7; body = "PUT k v" } in
  Alcotest.(check string) "wire form" "alice:7:PUT k v" (Session.tag r);
  (match Session.parse (Session.tag r) with
  | Some r' ->
    Alcotest.(check string) "client" "alice" r'.Session.client;
    Alcotest.(check int) "request" 7 r'.Session.request_id;
    Alcotest.(check string) "body" "PUT k v" r'.Session.body
  | None -> Alcotest.fail "parse failed");
  Alcotest.(check bool) "untagged" true (Session.parse "PUT k v" = None);
  Alcotest.check_raises "client with colon"
    (Invalid_argument "Session.tag: client id must not contain ':'") (fun () ->
      ignore (Session.tag { Session.client = "a:b"; request_id = 1; body = "x" }))

let test_session_exactly_once () =
  (* The same request committed twice (client retried through another
     replica): it must execute once. *)
  let log =
    [
      "alice:1:PUT counter 1";
      "bob:1:PUT other 5";
      "alice:1:PUT counter 999"; (* retry duplicate: must be skipped *)
      "alice:2:PUT counter 2";
    ]
  in
  let store, dedup, stats = Session.apply_log Kv.empty Session.empty log in
  Alcotest.(check int) "applied" 3 stats.Session.applied;
  Alcotest.(check int) "skipped" 1 stats.Session.skipped;
  Alcotest.(check (option string)) "final value" (Some "2") (Kv.find store "counter");
  Alcotest.(check bool) "dedup remembers" true
    (Session.seen dedup ~client:"alice" ~request_id:1)

let test_session_anonymous_passthrough () =
  let log = [ "PUT a 1"; "PUT a 1" ] in
  let store, _, stats = Session.apply_log Kv.empty Session.empty log in
  Alcotest.(check int) "anonymous both applied" 2 stats.Session.anonymous;
  Alcotest.(check (option string)) "value" (Some "1") (Kv.find store "a")

let test_session_replicas_converge_with_duplicates () =
  (* All replicas apply the same log (with a duplicate) through the
     session layer: identical digests. *)
  let log =
    [ "c1:1:PUT x 1"; "c1:2:PUT y 2"; "c1:1:PUT x HACKED"; "c2:1:DEL y" ]
  in
  let apply () =
    let store, _, _ = Session.apply_log Kv.empty Session.empty log in
    Kv.digest store
  in
  Alcotest.(check string) "deterministic" (apply ()) (apply ());
  let store, _, _ = Session.apply_log Kv.empty Session.empty log in
  Alcotest.(check (option string)) "retry did not re-execute" (Some "1")
    (Kv.find store "x")

let prop_kv_deterministic =
  QCheck.Test.make ~name:"apply_log is deterministic" ~count:100
    QCheck.(list (pair small_string small_string))
    (fun pairs ->
      let log = List.map (fun (k, v) -> Printf.sprintf "PUT k%s %s" k v) pairs in
      let s1, _ = Kv.apply_log Kv.empty log in
      let s2, _ = Kv.apply_log Kv.empty log in
      String.equal (Kv.digest s1) (Kv.digest s2))

let prop_identical_logs =
  QCheck.Test.make ~name:"all replicas build the same log" ~count:15
    QCheck.(small_int)
    (fun seed ->
      let result = run ~n:4 ~f:1 ~slots:2 ~seed () in
      result.E.stop = Abc_net.Engine.All_terminal
      &&
      match logs result (Node_id.all ~n:4) with
      | first :: rest -> List.for_all (fun log -> log = first) rest
      | [] -> false)

let () =
  Alcotest.run "replicated_log"
    [
      ( "agreement",
        [
          Alcotest.test_case "identical logs" `Quick test_logs_identical;
          Alcotest.test_case "commits in slot order" `Quick test_commits_in_slot_order;
          Alcotest.test_case "committed contents sorted" `Quick
            test_committed_contents_sorted_by_node;
          Alcotest.test_case "faulty replica excluded" `Quick
            test_faulty_replica_excluded_consistently;
          Alcotest.test_case "lying replica tolerated" `Quick
            test_lying_replica_logs_still_agree;
          Alcotest.test_case "single slot" `Quick test_single_slot;
          Alcotest.test_case "larger cluster" `Slow test_larger_cluster;
        ] );
      ( "atomic broadcast",
        [
          Alcotest.test_case "total order agreement" `Quick test_atomic_total_order;
          Alcotest.test_case "no duplicate tx" `Quick test_atomic_no_duplicates;
          Alcotest.test_case "commits in epoch order" `Quick
            test_atomic_commits_in_epoch_order;
          Alcotest.test_case "crash-faulty replica tolerated" `Quick
            test_atomic_crash_faulty_tolerated;
          Alcotest.test_case "deep pipeline" `Quick test_atomic_deep_pipeline;
          Alcotest.test_case "recovery: total order after crash" `Quick
            test_atomic_recovery_total_order;
          Alcotest.test_case "recovery: GC bounds live instances" `Quick
            test_atomic_gc_bounds_live_instances;
          Alcotest.test_case "recovery: checkpoint at window boundary" `Quick
            test_atomic_checkpoint_at_window_boundary;
          Alcotest.test_case "recovery: crash mid-dispersal" `Quick
            test_atomic_recovery_mid_dispersal;
          Alcotest.test_case "recovery: double crash before stable" `Quick
            test_atomic_double_crash_before_stable;
          Alcotest.test_case "recovery: deterministic" `Quick
            test_atomic_recovery_deterministic;
          Alcotest.test_case "batch codec roundtrip" `Quick test_batch_codec_roundtrip;
          Alcotest.test_case "workload deterministic" `Quick
            test_workload_deterministic;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "tag roundtrip" `Quick test_session_tag_roundtrip;
          Alcotest.test_case "exactly once" `Quick test_session_exactly_once;
          Alcotest.test_case "anonymous passthrough" `Quick
            test_session_anonymous_passthrough;
          Alcotest.test_case "replicas converge with duplicates" `Quick
            test_session_replicas_converge_with_duplicates;
        ] );
      ( "kv store",
        [
          Alcotest.test_case "parse/render" `Quick test_kv_parse_render;
          Alcotest.test_case "apply semantics" `Quick test_kv_apply_semantics;
          Alcotest.test_case "invalid is noop" `Quick test_kv_invalid_is_noop;
          Alcotest.test_case "digest discriminates" `Quick test_kv_digest_discriminates;
          Alcotest.test_case "replicas converge" `Quick test_kv_replicas_converge;
          QCheck_alcotest.to_alcotest prop_kv_deterministic;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_identical_logs ]);
    ]
