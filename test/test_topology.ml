(* Tests for partial topologies, exact vertex connectivity, the flood
   relay, and the connectivity threshold for agreement over flooding. *)

module Topology = Abc_net.Topology
module Node_id = Abc_net.Node_id
module Behaviour = Abc_net.Behaviour
module Adversary = Abc_net.Adversary

let node = Node_id.of_int

(* ---- graph basics ---- *)

let test_of_edges_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Topology.of_edges: self-loop")
    (fun () -> ignore (Topology.of_edges ~n:3 [ (1, 1) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Topology.of_edges: endpoint out of range") (fun () ->
      ignore (Topology.of_edges ~n:3 [ (0, 5) ]))

let test_edge_symmetry_and_dedup () =
  let g = Topology.of_edges ~n:4 [ (0, 1); (1, 0); (2, 3) ] in
  Alcotest.(check bool) "0-1" true (Topology.has_edge g (node 0) (node 1));
  Alcotest.(check bool) "1-0" true (Topology.has_edge g (node 1) (node 0));
  Alcotest.(check bool) "0-2 absent" false (Topology.has_edge g (node 0) (node 2));
  Alcotest.(check (list (pair int int))) "edges deduped" [ (0, 1); (2, 3) ]
    (Topology.edges g)

let test_generators () =
  let k5 = Topology.complete ~n:5 in
  Alcotest.(check int) "K5 edges" 10 (List.length (Topology.edges k5));
  Alcotest.(check int) "K5 degree" 4 (Topology.degree k5 (node 2));
  let ring = Topology.ring ~n:6 in
  Alcotest.(check int) "ring edges" 6 (List.length (Topology.edges ring));
  Alcotest.(check int) "ring degree" 2 (Topology.degree ring (node 0));
  let star = Topology.star ~n:5 in
  Alcotest.(check int) "star hub degree" 4 (Topology.degree star (node 0));
  Alcotest.(check int) "star leaf degree" 1 (Topology.degree star (node 3));
  let circ = Topology.circulant ~n:8 ~offsets:[ 1; 2 ] in
  Alcotest.(check int) "circulant degree" 4 (Topology.degree circ (node 0))

let test_neighbors_sorted () =
  let g = Topology.of_edges ~n:5 [ (2, 4); (2, 0); (2, 1) ] in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 4 ]
    (List.map Node_id.to_int (Topology.neighbors g (node 2)))

let test_connectivity_checks () =
  let ring = Topology.ring ~n:6 in
  Alcotest.(check bool) "ring connected" true (Topology.is_connected ring);
  Alcotest.(check bool) "ring minus adjacent pair stays connected" true
    (Topology.connected_after_removing ring [ node 0; node 1 ]);
  Alcotest.(check bool) "ring minus opposite pair splits" false
    (Topology.connected_after_removing ring [ node 0; node 3 ]);
  let disconnected = Topology.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "two components" false (Topology.is_connected disconnected)

let test_vertex_connectivity_known_values () =
  Alcotest.(check int) "K5" 4 (Topology.vertex_connectivity (Topology.complete ~n:5));
  Alcotest.(check int) "ring" 2 (Topology.vertex_connectivity (Topology.ring ~n:8));
  Alcotest.(check int) "star" 1 (Topology.vertex_connectivity (Topology.star ~n:6));
  Alcotest.(check int) "circulant(1,2)" 4
    (Topology.vertex_connectivity (Topology.circulant ~n:8 ~offsets:[ 1; 2 ]));
  Alcotest.(check int) "circulant(1,2,3)" 6
    (Topology.vertex_connectivity (Topology.circulant ~n:9 ~offsets:[ 1; 2; 3 ]));
  (* path graph has a cut vertex *)
  let path = Topology.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  Alcotest.(check int) "path" 1 (Topology.vertex_connectivity path);
  let disconnected = Topology.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check int) "disconnected" 0 (Topology.vertex_connectivity disconnected)

let prop_circulant_connectivity =
  QCheck.Test.make ~name:"circulant(1..k) has connectivity 2k" ~count:20
    QCheck.(pair (int_range 4 7) (int_range 1 3))
    (fun (half_n, k) ->
      let n = 2 * half_n in
      QCheck.assume (2 * k < n - 1);
      let g = Topology.circulant ~n ~offsets:(List.init k (fun i -> i + 1)) in
      Topology.vertex_connectivity g = 2 * k)

(* ---- engine enforcement ---- *)

(* Reuse the net-test gossip idea: everyone broadcasts, waits for n-f
   distinct values. *)
module Gossip = struct
  module Protocol = Abc_net.Protocol

  type input = int
  type msg = Hello of int
  type output = Done of int
  type state = { heard : int Node_id.Map.t; quorum : int; finished : bool }

  let name = "gossip"

  let initial ctx input =
    ( { heard = Node_id.Map.empty; quorum = Protocol.Context.quorum ctx; finished = false },
      [ Protocol.Broadcast (Hello input) ] )

  let on_message _ctx state ~src (Hello v) =
    if state.finished || Node_id.Map.mem src state.heard then (state, [], [])
    else begin
      let heard = Node_id.Map.add src v state.heard in
      if Node_id.Map.cardinal heard >= state.quorum then
        ({ state with heard; finished = true }, [],
         [ Done (Node_id.Map.fold (fun _ v acc -> acc + v) heard 0) ])
      else ({ state with heard }, [], [])
    end

  let is_terminal (Done _) = true
  let on_timeout = Protocol.no_timeout
  let msg_label (Hello _) = "hello"
  let msg_bytes (Hello _) = 5
  let pp_msg ppf (Hello v) = Fmt.pf ppf "hello(%d)" v
  let pp_output ppf (Done s) = Fmt.pf ppf "done(%d)" s
end

module GE = Abc_net.Engine.Make (Gossip)

let test_engine_drops_non_edges () =
  (* On a star, leaves cannot hear each other directly: with f=0 the
     quorum (= n) is unreachable and messages across non-edges are
     dropped. *)
  let g = Topology.star ~n:4 in
  let result =
    GE.run
      (GE.config ~n:4 ~f:0 ~inputs:[| 1; 2; 3; 4 |] ~topology:g ())
  in
  Alcotest.(check string) "quiescent" "quiescent"
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.GE.stop);
  Alcotest.(check bool) "drops counted" true
    (Abc_sim.Metrics.counter result.GE.metrics "dropped.topology" > 0)

let test_engine_topology_size_check () =
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Engine.config: topology size must equal n") (fun () ->
      ignore
        (GE.config ~n:4 ~f:0 ~inputs:[| 1; 2; 3; 4 |]
           ~topology:(Topology.ring ~n:5) ()))

(* ---- relay over partial graphs ---- *)

module Relayed_gossip = Abc_net.Relay.Make (Gossip)
module RGE = Abc_net.Engine.Make (Relayed_gossip)

let test_relay_completes_gossip_on_ring () =
  let g = Topology.ring ~n:5 in
  let result =
    RGE.run (RGE.config ~n:5 ~f:0 ~inputs:[| 1; 2; 3; 4; 5 |] ~topology:g ())
  in
  Alcotest.(check string) "all terminal" "all-terminal"
    (Fmt.str "%a" Abc_net.Engine.pp_stop_reason result.RGE.stop);
  Array.iter
    (fun outputs ->
      match outputs with
      | [ (_, Gossip.Done sum) ] -> Alcotest.(check int) "full sum" 15 sum
      | _ -> Alcotest.fail "expected one output")
    result.RGE.outputs

module M = Abc.Mmr_consensus
module RM = Abc_net.Relay.Make (M)

module RH = Abc.Harness.Make (struct
  include RM

  let value_of_input = M.value_of_input
end)

let consensus_over ~g ~crash_ids ~seed =
  let n = Topology.nodes g and f = 2 in
  let values =
    Array.init n (fun i -> if i < n / 2 then Abc.Value.Zero else Abc.Value.One)
  in
  let inputs = M.inputs ~n ~coin:(Abc.Coin.common ~seed:7) values in
  let faulty =
    List.map (fun i -> (node i, Behaviour.Crash_after 0)) crash_ids
  in
  let cfg =
    RH.E.config ~n ~f ~inputs ~faulty ~topology:g ~adversary:Adversary.uniform
      ~seed ~max_deliveries:400_000 ()
  in
  snd (RH.run cfg)

let test_connectivity_threshold () =
  (* κ = 2 ring: crashing an opposite pair cuts the graph — consensus
     must fail; κ = 4 circulant survives the same crashes. *)
  let ring = Topology.circulant ~n:8 ~offsets:[ 1 ] in
  let dense = Topology.circulant ~n:8 ~offsets:[ 1; 2 ] in
  let v = consensus_over ~g:ring ~crash_ids:[ 1; 5 ] ~seed:0 in
  Alcotest.(check bool) "cut kills the ring" false (Abc.Harness.ok v);
  List.iter
    (fun seed ->
      let v = consensus_over ~g:dense ~crash_ids:[ 1; 5 ] ~seed in
      Alcotest.(check bool)
        (Printf.sprintf "k=4 survives (seed %d)" seed)
        true (Abc.Harness.ok v))
    [ 0; 1; 2 ]

let test_relay_forgery_attack () =
  (* Naive flooding is unsafe against Byzantine relays: a relay that
     rewrites the payloads it forwards effectively forges other nodes'
     messages.  We demonstrate the attack exists (the run degrades), so
     the crash-only scope of the relay layer is justified.  On a ring,
     node 1 sits on many relay paths. *)
  let flip_inner _rng (envelope : RM.msg) =
    { envelope with RM.inner = M.Fault.flip_value (Abc_prng.Stream.root ~seed:0) envelope.RM.inner }
  in
  let g = Topology.circulant ~n:8 ~offsets:[ 1 ] in
  let n = 8 and f = 2 in
  let values = Array.init n (fun i -> if i < n / 2 then Abc.Value.Zero else Abc.Value.One) in
  let inputs = M.inputs ~n ~coin:(Abc.Coin.common ~seed:7) values in
  let faulty = [ (node 1, Behaviour.Mutate flip_inner) ] in
  let cfg =
    RH.E.config ~n ~f ~inputs ~faulty ~topology:g ~adversary:Adversary.uniform
      ~seed:3 ~max_deliveries:400_000 ()
  in
  let _, verdict = RH.run cfg in
  (* The attack may break termination or agreement depending on the
     schedule; the point is that the protocol guarantees are no longer
     intact even though only one node (= f-1 < f) is faulty. *)
  Alcotest.(check bool) "naive flooding degraded by one lying relay" false
    (Abc.Harness.ok verdict && verdict.Abc.Harness.max_round <= 3)

let () =
  Alcotest.run "topology"
    [
      ( "graphs",
        [
          Alcotest.test_case "of_edges validation" `Quick test_of_edges_validation;
          Alcotest.test_case "edge symmetry and dedup" `Quick
            test_edge_symmetry_and_dedup;
          Alcotest.test_case "generators" `Quick test_generators;
          Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
          Alcotest.test_case "connectivity checks" `Quick test_connectivity_checks;
          Alcotest.test_case "vertex connectivity known values" `Quick
            test_vertex_connectivity_known_values;
          QCheck_alcotest.to_alcotest prop_circulant_connectivity;
        ] );
      ( "engine",
        [
          Alcotest.test_case "non-edges dropped" `Quick test_engine_drops_non_edges;
          Alcotest.test_case "size check" `Quick test_engine_topology_size_check;
        ] );
      ( "relay",
        [
          Alcotest.test_case "gossip over ring" `Quick
            test_relay_completes_gossip_on_ring;
          Alcotest.test_case "connectivity threshold for consensus" `Slow
            test_connectivity_threshold;
          Alcotest.test_case "forgery attack on naive flooding" `Slow
            test_relay_forgery_attack;
        ] );
    ]
