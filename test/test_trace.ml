(* Tests for the structured observability layer: JSONL round-trips of
   typed events, exact trace eviction accounting, detailed metrics
   checked against a hand-computed Bracha RBC run, and a golden-output
   test for the abc-trace summary report. *)

module Event = Abc_sim.Event
module Trace = Abc_sim.Trace
module Trace_file = Abc_sim.Trace_file
module Trace_report = Abc_sim.Trace_report
module Json = Abc_sim.Json
module Metrics = Abc_sim.Metrics
module Node_id = Abc_net.Node_id
module Adversary = Abc_net.Adversary

(* ---- JSONL round-trip ---- *)

(* One representative of every event kind, with and without the
   optional instance/round fields. *)
let sample_entries : Trace.entry list =
  let e ?instance ?round ~time ~node kind =
    { Trace.time; node; event = Event.make ?instance ?round kind }
  in
  [
    e ~time:0 ~node:0 (Event.Send { dst = 3; label = "echo"; detail = ""; bytes = 2 });
    e ~time:1 ~node:3
      (Event.Deliver { src = 0; label = "echo"; detail = "echo(1)"; bytes = 2 });
    e ~time:2 ~node:3 ~instance:"n0/r1/s1"
      (Event.Quorum { quorum = "echo"; count = 3; threshold = 3 });
    e ~time:3 ~node:1 ~round:2 (Event.Coin_flip { value = 1 });
    e ~time:4 ~node:1 ~round:3 Event.Round_advance;
    e ~time:5 ~node:2 ~round:3 (Event.Decide { value = "1" });
    e ~time:6 ~node:2 (Event.Output { label = "decided" });
    e ~time:7 ~node:(-1) (Event.Note { tag = "stop"; detail = "all terminal" });
    e ~time:8 ~node:2
      (Event.Link_drop { src = 0; dst = 2; label = "echo"; reason = "loss" });
    e ~time:9 ~node:1
      (Event.Link_drop { src = 1; dst = 3; label = "rl.data"; reason = "partition" });
    e ~time:10 ~node:0 (Event.Link_dup { src = 0; dst = 3; label = "ready" });
    e ~time:11 ~node:3 (Event.Timer_set { id = 2; due = 43 });
    e ~time:43 ~node:3 (Event.Timer_fire { id = 2 });
    e ~time:44 ~node:3 (Event.Retransmit { dst = 1; seq = 5 });
    e ~time:50 ~node:0 ~instance:"epoch0" (Event.Epoch_start { epoch = 0 });
    e ~time:51 ~node:0 ~instance:"epoch0"
      (Event.Batch_proposed { epoch = 0; txs = 8; bytes = 412 });
    e ~time:60 ~node:2 ~instance:"epoch0"
      (Event.Batch_committed { epoch = 0; proposer = 1; txs = 8 });
    e ~time:60 ~node:2 ~instance:"epoch0"
      (Event.Tx_committed { epoch = 0; id = "n1-t000003" });
    e ~time:70 ~node:1 Event.Node_crash;
    e ~time:90 ~node:1 Event.Node_recover;
    e ~time:95 ~node:2 (Event.Checkpoint_stable { epoch = 1; len = 16 });
    e ~time:96 ~node:1 (Event.Transfer_start { have = 4 });
    e ~time:99 ~node:1 (Event.Transfer_done { epoch = 1; len = 16 });
  ]

let entry_equal (a : Trace.entry) (b : Trace.entry) =
  a.Trace.time = b.Trace.time
  && a.Trace.node = b.Trace.node
  && Event.equal a.Trace.event b.Trace.event

let test_entry_round_trip () =
  List.iter
    (fun entry ->
      let text = Json.to_string (Trace.entry_to_json entry) in
      match Json.of_string text with
      | Error msg -> Alcotest.fail ("reparse failed: " ^ msg)
      | Ok json -> (
        match Trace.entry_of_json json with
        | Error msg -> Alcotest.fail ("decode failed: " ^ msg)
        | Ok entry' ->
          Alcotest.(check bool)
            (Printf.sprintf "round-trip %s" text)
            true (entry_equal entry entry')))
    sample_entries

let test_file_round_trip () =
  let t = Trace.create ~capacity:100 () in
  List.iter
    (fun e -> Trace.record t ~time:e.Trace.time ~node:e.Trace.node e.Trace.event)
    sample_entries;
  let meta =
    [ ("protocol", Json.String "sample"); ("n", Json.Int 4); ("seed", Json.Int 7) ]
  in
  match Trace_file.of_string (Trace.to_jsonl_string ~meta t) with
  | Error msg -> Alcotest.fail msg
  | Ok file ->
    Alcotest.(check int) "version" Trace.schema_version file.Trace_file.version;
    Alcotest.(check int) "recorded" (List.length sample_entries)
      file.Trace_file.recorded;
    Alcotest.(check int) "dropped" 0 file.Trace_file.dropped;
    Alcotest.(check (option string)) "meta protocol" (Some "sample")
      (Trace_file.meta_string file "protocol");
    Alcotest.(check (option int)) "meta n" (Some 4) (Trace_file.meta_int file "n");
    Alcotest.(check (option int)) "meta seed" (Some 7)
      (Trace_file.meta_int file "seed");
    Alcotest.(check int) "entries" (List.length sample_entries)
      (List.length file.Trace_file.entries);
    List.iter2
      (fun a b ->
        Alcotest.(check bool) "entry preserved" true (entry_equal a b))
      sample_entries file.Trace_file.entries

let test_reader_rejects_garbage () =
  let fail_of = function Error msg -> msg | Ok _ -> Alcotest.fail "accepted" in
  Alcotest.(check bool) "empty input rejected" true
    (String.length (fail_of (Trace_file.of_string "")) > 0);
  Alcotest.(check bool) "wrong schema rejected" true
    (String.length (fail_of (Trace_file.of_string "{\"schema\":\"other\"}")) > 0);
  let future =
    Printf.sprintf "{\"schema\":\"abc.trace\",\"version\":%d}"
      (Trace.schema_version + 1)
  in
  Alcotest.(check bool) "future version rejected" true
    (String.length (fail_of (Trace_file.of_string future)) > 0)

(* A literal schema-v3 file (the last version before the atomic
   broadcast's epoch vocabulary landed) must still parse: the loader
   accepts every version <= current, and fields added since default
   rather than reject.  This pins the v3 -> v4 migration note in
   OBSERVABILITY.md. *)
let test_v3_file_still_loads () =
  let v3 =
    String.concat "\n"
      [
        "{\"schema\":\"abc.trace\",\"version\":3,\"meta\":{\"protocol\":\"bracha-rbc\",\"n\":4},\"recorded\":3,\"dropped\":0}";
        "{\"t\":0,\"node\":0,\"kind\":\"send\",\"dst\":1,\"label\":\"echo\",\"bytes\":2}";
        "{\"t\":1,\"node\":1,\"kind\":\"link-drop\",\"src\":0,\"dst\":1,\"label\":\"echo\",\"reason\":\"loss\"}";
        "{\"t\":2,\"node\":1,\"kind\":\"retransmit\",\"dst\":0,\"seq\":3}";
      ]
  in
  match Trace_file.of_string v3 with
  | Error msg -> Alcotest.fail ("v3 file rejected: " ^ msg)
  | Ok file ->
    Alcotest.(check int) "version" 3 file.Trace_file.version;
    Alcotest.(check int) "entries" 3 (List.length file.Trace_file.entries);
    Alcotest.(check (option string)) "meta protocol" (Some "bracha-rbc")
      (Trace_file.meta_string file "protocol");
    (* and a v4-era entry missing an optional field defaults instead of
       erroring — batch-proposed without "bytes" reads back as 0 *)
    let bare =
      "{\"t\":5,\"node\":2,\"kind\":\"batch-proposed\",\"epoch\":1,\"txs\":4}"
    in
    (match Json.of_string bare with
    | Error msg -> Alcotest.fail msg
    | Ok json -> (
      match Trace.entry_of_json json with
      | Error msg -> Alcotest.fail ("bare batch-proposed rejected: " ^ msg)
      | Ok entry ->
        Alcotest.(check bool) "bytes defaults to 0" true
          (Event.equal entry.Trace.event
             (Event.make (Event.Batch_proposed { epoch = 1; txs = 4; bytes = 0 })))))

(* A literal schema-v4 file (the last version before the crash-recovery
   vocabulary landed) must load under the v5 reader the same way: only
   new kinds were added, no existing field changed shape. *)
let test_v4_file_still_loads () =
  let v4 =
    String.concat "\n"
      [
        "{\"schema\":\"abc.trace\",\"version\":4,\"meta\":{\"protocol\":\"smr-atomic\",\"n\":4},\"recorded\":3,\"dropped\":0}";
        "{\"t\":0,\"node\":0,\"kind\":\"epoch-start\",\"epoch\":0,\"instance\":\"epoch0\"}";
        "{\"t\":1,\"node\":0,\"kind\":\"batch-proposed\",\"epoch\":0,\"txs\":8,\"bytes\":412,\"instance\":\"epoch0\"}";
        "{\"t\":9,\"node\":2,\"kind\":\"tx-committed\",\"epoch\":0,\"id\":\"n1-t000003\",\"instance\":\"epoch0\"}";
      ]
  in
  match Trace_file.of_string v4 with
  | Error msg -> Alcotest.fail ("v4 file rejected: " ^ msg)
  | Ok file ->
    Alcotest.(check int) "version" 4 file.Trace_file.version;
    Alcotest.(check int) "entries" 3 (List.length file.Trace_file.entries)

(* ---- summary/timeline node and epoch filters ---- *)

let test_report_filters () =
  let t = Trace.create ~capacity:100 () in
  List.iter
    (fun e -> Trace.record t ~time:e.Trace.time ~node:e.Trace.node e.Trace.event)
    sample_entries;
  let file =
    match Trace_file.of_string (Trace.to_jsonl_string ~meta:[] t) with
    | Ok f -> f
    | Error msg -> Alcotest.fail msg
  in
  let retained s =
    match
      List.find_opt
        (fun l -> String.starts_with ~prefix:"entries: retained=" l)
        (String.split_on_char '\n' s)
    with
    | Some line -> Scanf.sscanf line "entries: retained=%d" (fun k -> k)
    | None -> Alcotest.fail "no entries line"
  in
  let node_matches n =
    List.length
      (List.filter (fun e -> e.Trace.node = n) file.Trace_file.entries)
  in
  (* --node keeps exactly that node's entries and echoes the filter. *)
  let s1 = Trace_report.summary ~node:1 file in
  Alcotest.(check int) "node filter count" (node_matches 1) (retained s1);
  Alcotest.(check bool) "node filter echoed" true
    (List.mem "filter: node=1" (String.split_on_char '\n' s1));
  (* --epoch catches both kinds carrying the epoch and instance-scoped
     entries under "epoch0": in the sample, every epoch event is epoch
     0, so filtering epoch 1 keeps only the two v5 checkpoint/transfer
     events at epoch 1. *)
  let s2 = Trace_report.summary ~epoch:0 file in
  Alcotest.(check int) "epoch 0 count" 4 (retained s2);
  let s3 = Trace_report.summary ~epoch:1 file in
  Alcotest.(check int) "epoch 1 count" 2 (retained s3);
  (* no filters: byte-identical to the unfiltered renderer (the golden
     files depend on this). *)
  Alcotest.(check string) "no filter unchanged"
    (Trace_report.summary file)
    (Trace_report.summary ?node:None ?epoch:None file);
  (* timeline composes the filters conjunctively *)
  let tl = Trace_report.timeline ~node:1 ~epoch:1 file in
  let lines =
    List.filter
      (fun l -> String.length l > 0 && not (String.equal l "(no matching entries)"))
      (String.split_on_char '\n' tl)
  in
  Alcotest.(check int) "timeline node=1 epoch=1" 1 (List.length lines)

(* ---- eviction accounting ---- *)

let test_eviction_exact () =
  let capacity = 4 in
  let t = Trace.create ~capacity () in
  for i = 1 to 11 do
    Trace.note t ~time:i ~node:0 ~tag:"tick" (string_of_int i);
    (* The books must balance after every single record. *)
    Alcotest.(check int)
      (Printf.sprintf "invariant after %d" i)
      (Trace.recorded t)
      (Trace.length t + Trace.dropped t)
  done;
  Alcotest.(check int) "recorded" 11 (Trace.recorded t);
  Alcotest.(check int) "length" capacity (Trace.length t);
  Alcotest.(check int) "dropped" 7 (Trace.dropped t);
  (* The header advertises the same accounting. *)
  let header = Trace.header_json t in
  Alcotest.(check (option int)) "header recorded" (Some 11)
    (Json.int_member "recorded" header);
  Alcotest.(check (option int)) "header retained" (Some capacity)
    (Json.int_member "retained" header);
  Alcotest.(check (option int)) "header dropped" (Some 7)
    (Json.int_member "dropped" header);
  (* ... and survives the JSONL round-trip. *)
  match Trace_file.of_string (Trace.to_jsonl_string t) with
  | Error msg -> Alcotest.fail msg
  | Ok file ->
    Alcotest.(check int) "file recorded" 11 file.Trace_file.recorded;
    Alcotest.(check int) "file dropped" 7 file.Trace_file.dropped;
    Alcotest.(check int) "file entries" capacity
      (List.length file.Trace_file.entries)

(* ---- sampling sink: exact counts, 1-in-k retention ---- *)

let test_sampling_exact_counts () =
  let sample = 7 in
  let t = Trace.create ~capacity:10_000 ~sample () in
  let sends = 100 and notes = 23 in
  for i = 1 to sends do
    Trace.record t ~time:i ~node:0
      (Abc_sim.Event.make
         (Abc_sim.Event.Send { dst = 1; label = "m"; detail = ""; bytes = 4 }))
  done;
  for i = 1 to notes do
    Trace.note t ~time:i ~node:0 ~tag:"tick" (string_of_int i)
  done;
  let total = sends + notes in
  (* Counting is exact even though only every 7th entry is stored. *)
  Alcotest.(check int) "recorded exact" total (Trace.recorded t);
  Alcotest.(check int) "send count exact" sends
    (Trace.count_kind t ~label:"send");
  Alcotest.(check int) "note count exact" notes
    (Trace.count_kind t ~label:"note");
  Alcotest.(check (list (pair string int)))
    "counts lists every kind seen" [ ("send", sends); ("note", notes) ]
    (Trace.counts t);
  (* Retention is the deterministic stride: events #1, #8, #15, ... *)
  let expected_retained = ((total - 1) / sample) + 1 in
  Alcotest.(check int) "1-in-k retained" expected_retained (Trace.length t);
  (* The header advertises the stride and the exact per-kind counts. *)
  let header = Trace.header_json t in
  Alcotest.(check (option int)) "header sample" (Some sample)
    (Json.int_member "sample" header);
  (match Json.member "counts" header with
  | Some counts ->
    Alcotest.(check (option int)) "header send count" (Some sends)
      (Json.int_member "send" counts)
  | None -> Alcotest.fail "sampling header has no counts object");
  (* An unsampled trace keeps the v5 header shape: no extra fields. *)
  let plain = Trace.create ~capacity:8 () in
  Trace.note plain ~time:1 ~node:0 ~tag:"t" "x";
  Alcotest.(check bool) "no sample field when sample=1" true
    (Json.member "sample" (Trace.header_json plain) = None);
  Alcotest.(check bool) "no counts field when sample=1" true
    (Json.member "counts" (Trace.header_json plain) = None)

(* ---- detailed metrics vs a hand-computed RBC run ---- *)

(* n=4, f=1, fifo schedule, all honest, sender node 0.  Every node
   receives the Initial (4 point-to-point sends from node 0), echoes
   (4 nodes x 4 destinations = 16 echo sends), reaches the echo quorum
   of 3 and broadcasts Ready (16 ready sends), then delivers on the
   2f+1 = 3 ready quorum.  Totals are exact, not statistical. *)
module Rbc = Abc.Bracha_rbc.Binary
module Rbc_run = Abc_net.Engine.Make (Rbc)

let rbc_run () =
  let trace = Trace.create ~capacity:10_000 () in
  let config =
    Rbc_run.config ~n:4 ~f:1
      ~inputs:(Rbc.inputs ~n:4 ~sender:(Node_id.of_int 0) Abc.Value.One)
      ~adversary:Adversary.fifo ~seed:0 ~trace ~detail:true ()
  in
  (Rbc_run.run config, trace)

let test_rbc_metrics_hand_computed () =
  let result, _ = rbc_run () in
  let m = result.Rbc_run.metrics in
  Alcotest.(check int) "sent.initial" 4 (Metrics.counter m "sent.initial");
  Alcotest.(check int) "sent.echo" 16 (Metrics.counter m "sent.echo");
  Alcotest.(check int) "sent.ready" 16 (Metrics.counter m "sent.ready");
  Alcotest.(check int) "sent total" 36 (Metrics.counter m "sent");
  (* Each node delivers on its 3rd Ready and the run stops when all
     are terminal, so the 4th Ready to every node is never consumed:
     36 sends - 4 undelivered = 32. *)
  Alcotest.(check int) "delivered" 32 (Metrics.counter m "delivered");
  (* Node 0 sends its Initial broadcast on top of echo + ready. *)
  Alcotest.(check int) "node0.sent" 12 (Metrics.counter m "node0.sent");
  Alcotest.(check int) "node1.sent" 8 (Metrics.counter m "node1.sent");
  Array.iteri
    (fun i _ ->
      Alcotest.(check int)
        (Printf.sprintf "node%d.outputs" i)
        1
        (Metrics.counter m (Printf.sprintf "node%d.outputs" i)))
    result.Rbc_run.outputs

let test_rbc_trace_quorums () =
  let _, trace = rbc_run () in
  (* Each of the 4 nodes latches Ready exactly once (echo quorum or
     f+1 amplification) and delivers exactly once: 8 quorum events. *)
  let quorums = Trace.find_kind trace ~label:"quorum" in
  Alcotest.(check int) "quorum events" 8 (List.length quorums);
  let count name =
    List.length
      (List.filter
         (fun e ->
           match e.Trace.event.Event.kind with
           | Event.Quorum { quorum; _ } -> String.equal quorum name
           | _ -> false)
         quorums)
  in
  Alcotest.(check int) "ready latches" 4
    (count "echo" + count "ready-amplify");
  Alcotest.(check int) "deliver quorums" 4 (count "ready");
  (* Outputs are traced too: one delivery per node. *)
  Alcotest.(check int) "output events" 4
    (List.length (Trace.find_kind trace ~label:"output"))

(* ---- golden summary ---- *)

(* The same run the CI trace-smoke job performs through the abc-run and
   abc-trace binaries: Bracha consensus, n=7 f=2 seed=42, uniform
   adversary, split inputs, default options.  The rendered summary must
   match test/golden/smoke_summary.txt byte for byte. *)
let consensus_summary () =
  let module B = Abc.Bracha_consensus in
  let module H = Abc.Harness.Make (struct
    include B

    let value_of_input = B.value_of_input
  end) in
  let n = 7 and f = 2 and seed = 42 in
  let values =
    Array.init n (fun i -> if i < n / 2 then Abc.Value.Zero else Abc.Value.One)
  in
  let trace = Trace.create ~capacity:1_000_000 () in
  let config =
    H.E.config ~n ~f
      ~inputs:(B.inputs ~n ~options:B.Options.default values)
      ~adversary:Adversary.uniform ~seed ~trace ()
  in
  let _ = H.run config in
  let meta =
    [
      ("protocol", Json.String "bracha-consensus");
      ("n", Json.Int n);
      ("f", Json.Int f);
      ("seed", Json.Int seed);
    ]
  in
  match Trace_file.of_string (Trace.to_jsonl_string ~meta trace) with
  | Error msg -> Alcotest.fail msg
  | Ok file -> Trace_report.summary file

(* The same run the CI atomic-smoke job performs through the binaries:
   abc-run smr --atomic -n 4 -f 1 --epochs 3 --batch-size 8 --seed 11
   (defaults: window 2, tx-rate 0.5, tx-bytes 32, uniform adversary).
   The rendered summary must match test/golden/atomic_summary.txt byte
   for byte — this is the schema-v4 epoch vocabulary under glass. *)
let atomic_summary () =
  let module Atomic = Abc_smr.Atomic_broadcast in
  let module Workload = Abc_smr.Workload in
  let module E = Abc_net.Engine.Make (Atomic) in
  let n = 4 and f = 1 and seed = 11 in
  let batch_size = 8 and epochs = 3 in
  let mempools =
    Array.init n (fun i ->
        Workload.txs
          (Workload.generate ~seed ~node:(Node_id.of_int i)
             ~count:(batch_size * epochs) ~rate:0.5 ~tx_bytes:32))
  in
  let trace = Trace.create ~capacity:1_000_000 () in
  let config =
    E.config ~n ~f
      ~inputs:
        (Atomic.inputs ~n ~window:2 ~batch_size ~epochs
           ~coin_seed:(seed + 7919) mempools)
      ~adversary:Adversary.uniform ~seed ~trace ()
  in
  let _ = E.run config in
  let meta =
    [
      ("protocol", Json.String "smr-atomic");
      ("n", Json.Int n);
      ("f", Json.Int f);
      ("seed", Json.Int seed);
    ]
  in
  match Trace_file.of_string (Trace.to_jsonl_string ~meta trace) with
  | Error msg -> Alcotest.fail msg
  | Ok file -> Trace_report.summary file

(* The same run the CI recovery-smoke job performs through the
   binaries: abc-run smr --atomic -n 4 -f 1 --epochs 4 --batch-size 4
   --seed 21 --checkpoint-interval 2 --crash 2:300:2500 (defaults:
   window 2, tx-rate 0.5, tx-bytes 32, uniform adversary).  The
   rendered summary must match test/golden/recovery_summary.txt byte
   for byte — this pins the schema-v5 recovery vocabulary
   (node-crashed, node-recovered, checkpoint-stable and the
   state-transfer pair) under glass. *)
let recovery_summary () =
  let module Atomic = Abc_smr.Atomic_broadcast in
  let module Workload = Abc_smr.Workload in
  let module E = Abc_net.Engine.Make (Atomic) in
  let n = 4 and f = 1 and seed = 21 in
  let batch_size = 4 and epochs = 4 in
  let mempools =
    Array.init n (fun i ->
        Workload.txs
          (Workload.generate ~seed ~node:(Node_id.of_int i)
             ~count:(batch_size * epochs) ~rate:0.5 ~tx_bytes:32))
  in
  let trace = Trace.create ~capacity:1_000_000 () in
  let config =
    E.config ~n ~f
      ~inputs:
        (Atomic.inputs ~n ~window:2 ~checkpoint_interval:2 ~batch_size ~epochs
           ~coin_seed:(seed + 7919) mempools)
      ~faulty:
        [ (Node_id.of_int 2, Abc_net.Behaviour.Crash_recover [ (300, 2500) ]) ]
      ~recovery:{ E.snapshot = Atomic.snapshot; restore = Atomic.restore }
      ~adversary:Adversary.uniform ~seed ~trace ()
  in
  let _ = E.run config in
  let meta =
    [
      ("protocol", Json.String "smr-atomic");
      ("n", Json.Int n);
      ("f", Json.Int f);
      ("seed", Json.Int seed);
    ]
  in
  match Trace_file.of_string (Trace.to_jsonl_string ~meta trace) with
  | Error msg -> Alcotest.fail msg
  | Ok file -> Trace_report.summary file

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_golden_summary () =
  let golden = read_file "golden/smoke_summary.txt" in
  Alcotest.(check string) "summary matches golden" golden (consensus_summary ())

let test_summary_deterministic () =
  Alcotest.(check string) "same seed, same summary" (consensus_summary ())
    (consensus_summary ())

let test_atomic_golden_summary () =
  let golden = read_file "golden/atomic_summary.txt" in
  Alcotest.(check string) "atomic summary matches golden" golden
    (atomic_summary ())

let test_recovery_golden_summary () =
  let golden = read_file "golden/recovery_summary.txt" in
  Alcotest.(check string) "recovery summary matches golden" golden
    (recovery_summary ())

(* ---- suite ---- *)

let () =
  Alcotest.run "trace"
    [
      ( "jsonl",
        [
          Alcotest.test_case "entry round-trip" `Quick test_entry_round_trip;
          Alcotest.test_case "file round-trip" `Quick test_file_round_trip;
          Alcotest.test_case "reader rejects garbage" `Quick
            test_reader_rejects_garbage;
          Alcotest.test_case "v3 file still loads" `Quick
            test_v3_file_still_loads;
          Alcotest.test_case "v4 file still loads" `Quick
            test_v4_file_still_loads;
          Alcotest.test_case "report filters" `Quick test_report_filters;
        ] );
      ( "eviction",
        [ Alcotest.test_case "exact accounting" `Quick test_eviction_exact ] );
      ( "sampling",
        [
          Alcotest.test_case "exact counts, 1-in-k retention" `Quick
            test_sampling_exact_counts;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "hand-computed rbc" `Quick
            test_rbc_metrics_hand_computed;
          Alcotest.test_case "rbc quorum events" `Quick test_rbc_trace_quorums;
        ] );
      ( "golden",
        [
          Alcotest.test_case "summary matches golden" `Quick test_golden_summary;
          Alcotest.test_case "atomic summary matches golden" `Quick
            test_atomic_golden_summary;
          Alcotest.test_case "recovery summary matches golden" `Quick
            test_recovery_golden_summary;
          Alcotest.test_case "summary deterministic" `Quick
            test_summary_deterministic;
        ] );
    ]
